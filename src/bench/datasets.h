// Named synthetic dataset registry mirroring the paper's Tables III/IV.
//
// The paper's datasets are public DIMACS road networks (NY ... CTR) and
// KONECT/SNAP social networks (MV-10 ... SO-Y); this offline reproduction
// regenerates each family synthetically at ~1/40 scale with the same
// relative size progression and the same |w| (DESIGN.md §3.1). All datasets
// are deterministic given (name, scale).

#ifndef WCSD_BENCH_DATASETS_H_
#define WCSD_BENCH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace wcsd {

/// A generated benchmark graph plus its provenance.
struct Dataset {
  std::string name;
  QualityGraph graph;
  int num_qualities = 0;  // the paper's |w|
};

/// Road-family names, smallest to largest (the x-axis of Figures 5-9).
const std::vector<std::string>& RoadDatasetNames();

/// Social-family names (the x-axis of Figures 10-12).
const std::vector<std::string>& SocialDatasetNames();

/// Generates a road dataset. `scale` multiplies the default grid side
/// (scale 1.0 = the sizes used in EXPERIMENTS.md); `num_qualities`
/// overrides |w| (0 keeps the road default of 5 — Figures 8/9 pass 20).
Dataset MakeRoadDataset(const std::string& name, double scale = 1.0,
                        int num_qualities = 0);

/// Generates a social dataset; |w| is fixed per name following Table IV
/// (MV-10/MV-25: 5, SO-Y: 9, others: 3).
Dataset MakeSocialDataset(const std::string& name, double scale = 1.0);

}  // namespace wcsd

#endif  // WCSD_BENCH_DATASETS_H_
