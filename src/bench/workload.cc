#include "bench/workload.h"

#include "util/random.h"

namespace wcsd {

std::vector<WcsdQuery> MakeQueryWorkload(const QualityGraph& g, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Quality> thresholds = g.DistinctQualities();
  std::vector<WcsdQuery> workload;
  workload.reserve(count);
  const size_t n = g.NumVertices();
  for (size_t i = 0; i < count; ++i) {
    WcsdQuery q;
    q.s = static_cast<Vertex>(rng.NextBounded(n));
    q.t = static_cast<Vertex>(rng.NextBounded(n));
    q.w = thresholds.empty()
              ? 1.0f
              : thresholds[rng.NextBounded(thresholds.size())];
    workload.push_back(q);
  }
  return workload;
}

}  // namespace wcsd
