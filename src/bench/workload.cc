#include "bench/workload.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace wcsd {

std::vector<WcsdQuery> MakeQueryWorkload(const QualityGraph& g, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Quality> thresholds = g.DistinctQualities();
  std::vector<WcsdQuery> workload;
  workload.reserve(count);
  const size_t n = g.NumVertices();
  for (size_t i = 0; i < count; ++i) {
    WcsdQuery q;
    q.s = static_cast<Vertex>(rng.NextBounded(n));
    q.t = static_cast<Vertex>(rng.NextBounded(n));
    q.w = thresholds.empty()
              ? 1.0f
              : thresholds[rng.NextBounded(thresholds.size())];
    workload.push_back(q);
  }
  return workload;
}

std::vector<WcsdQuery> MakeZipfQueryWorkload(const QualityGraph& g,
                                             size_t count, size_t pool_size,
                                             double theta, bool vary_w,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<Quality> thresholds = g.DistinctQualities();
  const size_t n = g.NumVertices();
  auto random_w = [&]() -> Quality {
    return thresholds.empty()
               ? 1.0f
               : thresholds[rng.NextBounded(thresholds.size())];
  };

  pool_size = std::max<size_t>(1, pool_size);
  std::vector<WcsdQuery> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back({static_cast<Vertex>(rng.NextBounded(n)),
                    static_cast<Vertex>(rng.NextBounded(n)), random_w()});
  }

  // Zipf CDF over pool ranks; draws binary-search it. O(log pool) per
  // query is negligible next to the queries the workload feeds.
  std::vector<double> cdf(pool_size);
  double mass = 0.0;
  for (size_t k = 0; k < pool_size; ++k) {
    mass += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf[k] = mass;
  }

  std::vector<WcsdQuery> workload;
  workload.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double u = rng.NextDouble() * mass;
    size_t k = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (k >= pool_size) k = pool_size - 1;
    WcsdQuery q = pool[k];
    if (vary_w) q.w = random_w();
    workload.push_back(q);
  }
  return workload;
}

}  // namespace wcsd
