#include "bench/datasets.h"

#include <cmath>
#include <stdexcept>

#include "graph/generators.h"

namespace wcsd {

namespace {

struct RoadSpec {
  const char* name;
  size_t side;  // grid side at scale 1.0
};

// Sides chosen so |V| tracks the paper's relative progression
// (NY 264k ... CTR 14M at full size; here ~1k ... ~17k at scale 1.0, sized
// so the full bench suite replays in minutes on one core).
constexpr RoadSpec kRoadSpecs[] = {
    {"NY", 32},  {"BAY", 40},  {"COL", 50},  {"FLA", 62},
    {"CAL", 72}, {"EST", 88},  {"WST", 108}, {"CTR", 132},
};

struct SocialSpec {
  const char* name;
  size_t vertices;  // at scale 1.0
  size_t edges_per_vertex;
  int num_qualities;
};

// Table IV: MV-10 / MV-25 are the labeled MovieLens sets (|w| = 5), SO-Y is
// Stackoverflow-year (|w| = 9), the web/wiki graphs use |w| = 3. Densities
// follow the paper's average-degree ordering.
constexpr SocialSpec kSocialSpecs[] = {
    {"MV-10", 1200, 20, 5}, {"EU", 2400, 12, 3},  {"ES", 2800, 12, 3},
    {"MV-25", 1600, 28, 5}, {"FR", 3200, 12, 3},  {"UK", 3000, 14, 3},
    {"SO-Y", 3600, 8, 9},
};

uint64_t SeedFor(const std::string& name) {
  // Stable per-name seed (FNV-1a) so datasets are reproducible.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const std::vector<std::string>& RoadDatasetNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const RoadSpec& s : kRoadSpecs) out.emplace_back(s.name);
    return out;
  }();
  return names;
}

const std::vector<std::string>& SocialDatasetNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SocialSpec& s : kSocialSpecs) out.emplace_back(s.name);
    return out;
  }();
  return names;
}

Dataset MakeRoadDataset(const std::string& name, double scale,
                        int num_qualities) {
  for (const RoadSpec& spec : kRoadSpecs) {
    if (name != spec.name) continue;
    RoadOptions options;
    double side = static_cast<double>(spec.side) * std::sqrt(scale);
    options.rows = options.cols = std::max<size_t>(4, static_cast<size_t>(side));
    options.quality.num_levels = num_qualities > 0 ? num_qualities : 5;
    Dataset d;
    d.name = name;
    d.num_qualities = options.quality.num_levels;
    d.graph = GenerateRoadNetwork(options, SeedFor(name));
    return d;
  }
  throw std::invalid_argument("unknown road dataset: " + name);
}

Dataset MakeSocialDataset(const std::string& name, double scale) {
  for (const SocialSpec& spec : kSocialSpecs) {
    if (name != spec.name) continue;
    size_t n = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(spec.vertices) * scale));
    QualityModel quality;
    quality.num_levels = spec.num_qualities;
    Dataset d;
    d.name = name;
    d.num_qualities = spec.num_qualities;
    d.graph = GenerateBarabasiAlbert(n, spec.edges_per_vertex, quality,
                                     SeedFor(name));
    return d;
  }
  throw std::invalid_argument("unknown social dataset: " + name);
}

}  // namespace wcsd
