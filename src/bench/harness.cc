#include "bench/harness.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace wcsd {

namespace {
void PrintCell(const std::string& text, int width) {
  std::printf("%-*s", width, text.c_str());
}
}  // namespace

TablePrinter::TablePrinter(const std::string& title,
                           const std::vector<std::string>& columns,
                           const std::vector<int>& widths)
    : widths_(widths) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    PrintCell(columns[i], i < widths_.size() ? widths_[i] : 12);
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    PrintCell(cells[i], i < widths_.size() ? widths_[i] : 12);
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string FormatMillis(double millis) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", millis);
  return buf;
}

std::string FormatGb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f",
                static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  return buf;
}

std::string InfCell() { return "INF"; }

namespace {
// Minimal JSON string escaping: the names we emit are benchmark ids, but a
// stray quote or backslash must not corrupt the file.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}
}  // namespace

Status BenchJsonWriter::WriteFile(std::string* out_path) const {
  std::string path = "BENCH_" + suite_ + ".json";
  if (out_path != nullptr) *out_path = path;
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "[\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    char median[32];
    std::snprintf(median, sizeof(median), "%.1f", r.median_ns);
    out << "  {\"name\": \"" << JsonEscape(r.name) << "\", \"median_ns\": "
        << median << ", \"threads\": " << r.threads << ", \"backend\": \""
        << JsonEscape(r.backend) << "\"";
    if (!r.counters.empty()) {
      out << ", \"counters\": {";
      for (size_t c = 0; c < r.counters.size(); ++c) {
        char value[32];
        std::snprintf(value, sizeof(value), "%.4f", r.counters[c].second);
        out << "\"" << JsonEscape(r.counters[c].first) << "\": " << value
            << (c + 1 < r.counters.size() ? ", " : "");
      }
      out << "}";
    }
    out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace wcsd
