#include "bench/harness.h"

#include <cstdio>
#include <cstring>

namespace wcsd {

namespace {
void PrintCell(const std::string& text, int width) {
  std::printf("%-*s", width, text.c_str());
}
}  // namespace

TablePrinter::TablePrinter(const std::string& title,
                           const std::vector<std::string>& columns,
                           const std::vector<int>& widths)
    : widths_(widths) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    PrintCell(columns[i], i < widths_.size() ? widths_[i] : 12);
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    PrintCell(cells[i], i < widths_.size() ? widths_[i] : 12);
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string FormatMillis(double millis) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", millis);
  return buf;
}

std::string FormatGb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f",
                static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  return buf;
}

std::string InfCell() { return "INF"; }

}  // namespace wcsd
