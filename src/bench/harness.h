// Output harness for the figure/table reproduction binaries: aligned tables
// with the same rows/series the paper reports, plus INF cells for methods
// that exceed their budget (as the paper renders Naïve on WST/CTR).

#ifndef WCSD_BENCH_HARNESS_H_
#define WCSD_BENCH_HARNESS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace wcsd {

/// Fixed-width console table writer.
class TablePrinter {
 public:
  /// Columns with display widths; printing the header immediately.
  TablePrinter(const std::string& title,
               const std::vector<std::string>& columns,
               const std::vector<int>& widths);

  /// Prints one row; cells beyond `columns` are ignored.
  void Row(const std::vector<std::string>& cells);

 private:
  std::vector<int> widths_;
};

/// Formats seconds with 3 significant decimals ("12.345").
std::string FormatSeconds(double seconds);

/// Formats a time-per-query in milliseconds ("0.0031").
std::string FormatMillis(double millis);

/// Formats bytes as fractional GB with enough precision for small indexes.
std::string FormatGb(size_t bytes);

/// The paper's INF cell.
std::string InfCell();

/// One machine-readable benchmark measurement, so the perf trajectory can
/// be tracked across PRs without scraping console tables.
struct BenchRecord {
  std::string name;       // benchmark id, e.g. "BM_QueryImpl/impl:3"
  double median_ns = 0;   // median (or sole) wall time per iteration
  size_t threads = 1;     // worker threads the measured code used
  std::string backend;    // label storage backend: "vector" | "flat" | other
  /// Benchmark-reported counters (google-benchmark UserCounters), emitted
  /// as a nested JSON object — how non-latency results (byte skew,
  /// throughput) reach the BENCH_*.json files.
  std::vector<std::pair<std::string, double>> counters;
};

/// Collects BenchRecords and writes them as one JSON array to
/// BENCH_<suite>.json in the working directory.
class BenchJsonWriter {
 public:
  /// `suite` names the output file: BENCH_<suite>.json.
  explicit BenchJsonWriter(std::string suite) : suite_(std::move(suite)) {}

  void Record(BenchRecord record) { records_.push_back(std::move(record)); }

  const std::vector<BenchRecord>& records() const { return records_; }

  /// Writes BENCH_<suite>.json (overwriting) and reports the path chosen.
  Status WriteFile(std::string* out_path = nullptr) const;

 private:
  std::string suite_;
  std::vector<BenchRecord> records_;
};

}  // namespace wcsd

#endif  // WCSD_BENCH_HARNESS_H_
