// Output harness for the figure/table reproduction binaries: aligned tables
// with the same rows/series the paper reports, plus INF cells for methods
// that exceed their budget (as the paper renders Naïve on WST/CTR).

#ifndef WCSD_BENCH_HARNESS_H_
#define WCSD_BENCH_HARNESS_H_

#include <string>
#include <vector>

namespace wcsd {

/// Fixed-width console table writer.
class TablePrinter {
 public:
  /// Columns with display widths; printing the header immediately.
  TablePrinter(const std::string& title,
               const std::vector<std::string>& columns,
               const std::vector<int>& widths);

  /// Prints one row; cells beyond `columns` are ignored.
  void Row(const std::vector<std::string>& cells);

 private:
  std::vector<int> widths_;
};

/// Formats seconds with 3 significant decimals ("12.345").
std::string FormatSeconds(double seconds);

/// Formats a time-per-query in milliseconds ("0.0031").
std::string FormatMillis(double millis);

/// Formats bytes as fractional GB with enough precision for small indexes.
std::string FormatGb(size_t bytes);

/// The paper's INF cell.
std::string InfCell();

}  // namespace wcsd

#endif  // WCSD_BENCH_HARNESS_H_
