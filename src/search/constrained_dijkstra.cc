#include "search/constrained_dijkstra.h"

#include <limits>
#include <queue>
#include <utility>

namespace wcsd {

namespace {

// Min-heap entry: (distance, vertex).
using HeapEntry = std::pair<Distance, Vertex>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

Distance ConstrainedDijkstraUnit(const QualityGraph& g, Vertex s, Vertex t,
                                 Quality w) {
  if (s == t) return 0;
  // The paper notes Dijkstra keeps a distance vector d[v] and updates it on
  // every improvement — exactly the overhead that makes it slower than BFS
  // on unit-length graphs. We reproduce that implementation faithfully.
  std::vector<Distance> dist(g.NumVertices(), kInfDistance);
  MinHeap heap;
  dist[s] = 0;
  heap.push({0, s});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // Stale entry.
    if (u == t) return d;
    for (const Arc& a : g.Neighbors(u)) {
      if (a.quality < w) continue;
      Distance nd = d + 1;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
  return kInfDistance;
}

Distance PartitionedDijkstra::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  auto level = partition_.LevelForConstraint(w);
  if (!level.has_value()) return kInfDistance;
  return ConstrainedDijkstraUnit(
      partition_.GraphAtLevel(*level), s, t,
      -std::numeric_limits<Quality>::infinity());
}

Distance ConstrainedDijkstraWeighted(const WeightedQualityGraph& g, Vertex s,
                                     Vertex t, Quality w) {
  if (s == t) return 0;
  std::vector<wcsd::Distance> dist(g.NumVertices(), kInfDistance);
  MinHeap heap;
  dist[s] = 0;
  heap.push({0, s});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == t) return d;
    for (const WeightedArc& a : g.Neighbors(u)) {
      if (a.quality < w) continue;
      Distance nd = d + a.length;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
  return kInfDistance;
}

std::vector<Distance> ConstrainedDijkstraWeightedAll(
    const WeightedQualityGraph& g, Vertex s, Quality w) {
  std::vector<wcsd::Distance> dist(g.NumVertices(), kInfDistance);
  MinHeap heap;
  dist[s] = 0;
  heap.push({0, s});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (const WeightedArc& a : g.Neighbors(u)) {
      if (a.quality < w) continue;
      Distance nd = d + a.length;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        heap.push({nd, a.to});
      }
    }
  }
  return dist;
}

}  // namespace wcsd
