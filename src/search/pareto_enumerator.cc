#include "search/pareto_enumerator.h"

#include <algorithm>
#include <cassert>

#include "search/wc_bfs.h"

namespace wcsd {

std::vector<FrontierPoint> ParetoFrontier(const QualityGraph& g, Vertex s,
                                          Vertex t) {
  std::vector<Quality> thresholds = g.DistinctQualities();
  WcBfs bfs(&g);
  // Sweep thresholds descending: distances are non-increasing in quality
  // demand... (non-decreasing as the threshold rises). Collect (dist, w)
  // per threshold, then keep the first (smallest-distance) point per
  // distinct distance with the LARGEST quality — that is the frontier.
  std::vector<FrontierPoint> frontier;
  for (auto it = thresholds.rbegin(); it != thresholds.rend(); ++it) {
    Distance d = bfs.Query(s, t, *it);
    if (d == kInfDistance) continue;
    if (frontier.empty() || d < frontier.back().distance) {
      frontier.push_back({d, *it});
    }
    // If d equals the previous distance, the previous point has a higher
    // quality (descending sweep) and dominates this one: skip.
  }
  // Frontier was built with descending quality => ascending distance is
  // reversed. Normalize to ascending distance.
  std::reverse(frontier.begin(), frontier.end());
  std::sort(frontier.begin(), frontier.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              return a.distance < b.distance;
            });
  return frontier;
}

namespace {

void Dfs(const QualityGraph& g, Vertex u, Vertex t, Distance len,
         Quality min_q, std::vector<bool>* on_path,
         std::vector<FrontierPoint>* profile) {
  if (u == t) {
    profile->push_back({len, min_q});
    return;
  }
  for (const Arc& a : g.Neighbors(u)) {
    if ((*on_path)[a.to]) continue;
    (*on_path)[a.to] = true;
    Dfs(g, a.to, t, len + 1, std::min(min_q, a.quality), on_path, profile);
    (*on_path)[a.to] = false;
  }
}

}  // namespace

std::vector<FrontierPoint> EnumerateSimplePathProfile(const QualityGraph& g,
                                                      Vertex s, Vertex t) {
  assert(g.NumVertices() <= 16 && "exhaustive oracle is exponential");
  std::vector<FrontierPoint> profile;
  if (s == t) return {{0, kInfQuality}};
  std::vector<bool> on_path(g.NumVertices(), false);
  on_path[s] = true;
  Dfs(g, s, t, 0, kInfQuality, &on_path, &profile);

  // Reduce to the dominance frontier (Def. 4): sort by (distance asc,
  // quality desc) and keep points whose quality strictly exceeds every
  // shorter point's quality.
  std::sort(profile.begin(), profile.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.quality > b.quality;
            });
  std::vector<FrontierPoint> frontier;
  Quality best_q = -1.0f;
  for (const FrontierPoint& p : profile) {
    if (p.quality > best_q) {
      // Skip same-distance duplicates (sorted quality-desc within distance).
      if (!frontier.empty() && frontier.back().distance == p.distance) {
        continue;
      }
      frontier.push_back(p);
      best_q = p.quality;
    }
  }
  return frontier;
}

}  // namespace wcsd
