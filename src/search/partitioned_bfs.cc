#include "search/partitioned_bfs.h"

#include <limits>

namespace wcsd {

PartitionedBfs::PartitionedBfs(const QualityGraph& g) : partition_(g) {
  engines_.reserve(partition_.NumLevels());
  for (size_t level = 0; level < partition_.NumLevels(); ++level) {
    engines_.push_back(std::make_unique<WcBfs>(&partition_.GraphAtLevel(level)));
  }
}

Distance PartitionedBfs::Query(Vertex s, Vertex t, Quality w) {
  if (s == t) return 0;
  auto level = partition_.LevelForConstraint(w);
  if (!level.has_value()) return kInfDistance;
  // The partition already excludes sub-threshold edges, so the inner BFS
  // runs unconstrained (w = -inf passes every remaining edge).
  return engines_[*level]->Query(
      s, t, -std::numeric_limits<Quality>::infinity());
}

}  // namespace wcsd
