// Constrained Dijkstra.
//
// Two roles:
//   * the paper's "Dijkstra" baseline (§VI): per-quality partitions searched
//     with a priority queue — deliberately carrying Dijkstra's bookkeeping
//     on a unit-length graph, which is why the paper observes it losing to
//     BFS;
//   * the weighted-graph extension substrate (§V): on graphs with integer
//     edge lengths the constrained BFS becomes a constrained Dijkstra.

#ifndef WCSD_SEARCH_CONSTRAINED_DIJKSTRA_H_
#define WCSD_SEARCH_CONSTRAINED_DIJKSTRA_H_

#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/weighted_graph.h"
#include "util/types.h"

namespace wcsd {

/// Dijkstra with per-edge quality filtering on a unit-length graph: the
/// paper's "Dijkstra" baseline. Returns kInfDistance if unreachable.
Distance ConstrainedDijkstraUnit(const QualityGraph& g, Vertex s, Vertex t,
                                 Quality w);

/// The partitioned variant the paper benchmarks: Dijkstra on the filtered
/// graph for the query's quality level.
class PartitionedDijkstra {
 public:
  explicit PartitionedDijkstra(const QualityGraph& g) : partition_(g) {}

  /// w-constrained distance via Dijkstra on the matching partition.
  Distance Query(Vertex s, Vertex t, Quality w) const;

 private:
  QualityPartition partition_;
};

/// Constrained Dijkstra on a weighted graph: shortest summed-length w-path.
Distance ConstrainedDijkstraWeighted(const WeightedQualityGraph& g, Vertex s,
                                     Vertex t, Quality w);

/// Single-source constrained Dijkstra on a weighted graph.
std::vector<Distance> ConstrainedDijkstraWeightedAll(
    const WeightedQualityGraph& g, Vertex s, Quality w);

}  // namespace wcsd

#endif  // WCSD_SEARCH_CONSTRAINED_DIJKSTRA_H_
