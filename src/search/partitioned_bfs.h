// W-BFS baseline (paper §VI): partition the graph into |w| filtered copies,
// then answer each query with a plain BFS on the matching partition.
//
// Trades O(|w| * |E|) memory for skipping the per-edge quality test of
// C-BFS. The paper finds C-BFS slightly faster in practice — a shape our
// Figure 7/12 benches reproduce.

#ifndef WCSD_SEARCH_PARTITIONED_BFS_H_
#define WCSD_SEARCH_PARTITIONED_BFS_H_

#include <memory>
#include <vector>

#include "graph/subgraph.h"
#include "search/wc_bfs.h"
#include "util/types.h"

namespace wcsd {

/// BFS over precomputed quality partitions.
class PartitionedBfs {
 public:
  /// Builds the |w| filtered graphs of `g`.
  explicit PartitionedBfs(const QualityGraph& g);

  /// w-constrained distance via BFS on the partition for w.
  Distance Query(Vertex s, Vertex t, Quality w);

  /// Bytes held by the partitions.
  size_t MemoryBytes() const { return partition_.MemoryBytes(); }

  const QualityPartition& partition() const { return partition_; }

 private:
  QualityPartition partition_;
  // One reusable BFS engine per partition (engines hold scratch state).
  std::vector<std::unique_ptr<WcBfs>> engines_;
};

}  // namespace wcsd

#endif  // WCSD_SEARCH_PARTITIONED_BFS_H_
