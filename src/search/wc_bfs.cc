#include "search/wc_bfs.h"

#include <cassert>

namespace wcsd {

WcBfs::WcBfs(const QualityGraph* g)
    : g_(g), visited_(g->NumVertices(), false) {
  queue_.reserve(g->NumVertices());
}

Distance WcBfs::Query(Vertex s, Vertex t, Quality w) {
  assert(s < g_->NumVertices() && t < g_->NumVertices());
  if (s == t) return 0;
  visited_.Clear();
  queue_.clear();
  queue_.push_back(s);
  visited_.Set(s, true);
  Distance dist = 0;
  size_t level_begin = 0;
  // Level-synchronous expansion, as in Algorithm 1: `size` marks the current
  // frontier, dist advances per level.
  while (level_begin < queue_.size()) {
    size_t level_end = queue_.size();
    ++dist;
    for (size_t i = level_begin; i < level_end; ++i) {
      Vertex u = queue_[i];
      for (const Arc& a : g_->Neighbors(u)) {
        if (a.quality < w || visited_.Get(a.to)) continue;
        if (a.to == t) return dist;
        visited_.Set(a.to, true);
        queue_.push_back(a.to);
      }
    }
    level_begin = level_end;
  }
  return kInfDistance;
}

std::vector<Distance> WcBfs::AllDistances(Vertex s, Quality w) {
  std::vector<Distance> dist(g_->NumVertices(), kInfDistance);
  visited_.Clear();
  queue_.clear();
  queue_.push_back(s);
  visited_.Set(s, true);
  dist[s] = 0;
  size_t head = 0;
  while (head < queue_.size()) {
    Vertex u = queue_[head++];
    for (const Arc& a : g_->Neighbors(u)) {
      if (a.quality < w || visited_.Get(a.to)) continue;
      visited_.Set(a.to, true);
      dist[a.to] = dist[u] + 1;
      queue_.push_back(a.to);
    }
  }
  return dist;
}

Distance ConstrainedBfsDistance(const QualityGraph& g, Vertex s, Vertex t,
                                Quality w) {
  WcBfs bfs(&g);
  return bfs.Query(s, t, w);
}

}  // namespace wcsd
