// WC-BFS / C-BFS: constrained breadth-first search (paper Algorithm 1).
//
// The online baseline: traverse the original graph, skipping edges whose
// quality is below the constraint. O(|V| + |E|) per query. Also the test
// oracle every index implementation is validated against.

#ifndef WCSD_SEARCH_WC_BFS_H_
#define WCSD_SEARCH_WC_BFS_H_

#include <vector>

#include "graph/graph.h"
#include "util/epoch_array.h"
#include "util/types.h"

namespace wcsd {

/// Reusable constrained-BFS engine. Scratch arrays are epoch-stamped, so a
/// query costs O(traversed) rather than O(|V|) initialization.
class WcBfs {
 public:
  /// Binds to `g`; the graph must outlive the engine.
  explicit WcBfs(const QualityGraph* g);

  /// w-constrained distance from s to t (Def. 2), or kInfDistance if no
  /// w-path exists. Early-exits when t is dequeued.
  Distance Query(Vertex s, Vertex t, Quality w);

  /// Single-source w-constrained distances to every vertex (kInfDistance
  /// where unreachable).
  std::vector<Distance> AllDistances(Vertex s, Quality w);

  /// True if a w-path from s to t exists.
  bool Reachable(Vertex s, Vertex t, Quality w) {
    return Query(s, t, w) != kInfDistance;
  }

 private:
  const QualityGraph* g_;
  EpochArray<bool> visited_;
  std::vector<Vertex> queue_;
};

/// One-shot convenience wrapper around WcBfs::Distance.
Distance ConstrainedBfsDistance(const QualityGraph& g, Vertex s, Vertex t,
                                Quality w);

}  // namespace wcsd

#endif  // WCSD_SEARCH_WC_BFS_H_
