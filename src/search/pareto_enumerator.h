// Brute-force oracles over the (length, quality) path dominance order
// (paper Def. 4-5).
//
// Two oracles, both for tests only:
//   * ParetoFrontier — the set of minimal paths' (distance, quality) pairs
//     for a vertex pair, computed by sweeping constrained BFS over every
//     distinct quality threshold. Polynomial; usable on mid-sized graphs.
//   * EnumerateSimplePathProfile — exhaustive DFS over simple paths on tiny
//     graphs; validates the sweep oracle itself and the dominance
//     definitions.

#ifndef WCSD_SEARCH_PARETO_ENUMERATOR_H_
#define WCSD_SEARCH_PARETO_ENUMERATOR_H_

#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// One point of a dominance frontier: there exists a w-path of length
/// `distance` whose minimum edge quality is exactly `quality`, and no path
/// dominates it (Def. 4).
struct FrontierPoint {
  Distance distance;
  Quality quality;

  friend bool operator==(const FrontierPoint&, const FrontierPoint&) = default;
};

/// Computes the Pareto frontier of minimal paths between s and t by running
/// constrained BFS once per distinct quality value. Points are returned with
/// ascending distance and (necessarily) descending quality. Empty if t is
/// unreachable from s at every threshold.
std::vector<FrontierPoint> ParetoFrontier(const QualityGraph& g, Vertex s,
                                          Vertex t);

/// Exhaustively enumerates all simple paths from s to t (exponential: only
/// for graphs with <= ~14 vertices) and reduces their (length, min-quality)
/// profile to the dominance frontier.
std::vector<FrontierPoint> EnumerateSimplePathProfile(const QualityGraph& g,
                                                      Vertex s, Vertex t);

}  // namespace wcsd

#endif  // WCSD_SEARCH_PARETO_ENUMERATOR_H_
