#include "core/reachability.h"

#include <algorithm>
#include <limits>

namespace wcsd {

WcReachabilityIndex WcReachabilityIndex::FromWcIndex(const WcIndex& index) {
  const LabelSet& full = index.labels();
  LabelSet reduced(full.NumVertices());
  for (Vertex v = 0; v < full.NumVertices(); ++v) {
    auto lv = full.For(v);
    auto* out = reduced.Mutable(v);
    size_t i = 0;
    while (i < lv.size()) {
      size_t ie = i + 1;
      while (ie < lv.size() && lv[ie].hub == lv[i].hub) ++ie;
      // Theorem 3: the last entry of the group carries the group's maximum
      // quality — the only value reachability needs. Distance is kept for
      // diagnostics but unused by Reachable().
      out->push_back(lv[ie - 1]);
      i = ie;
    }
  }
  return WcReachabilityIndex(std::move(reduced), index.order());
}

WcReachabilityIndex WcReachabilityIndex::Build(const QualityGraph& g,
                                               const WcIndexOptions& options) {
  return FromWcIndex(WcIndex::Build(g, options));
}

bool WcReachabilityIndex::Reachable(Vertex s, Vertex t, Quality w) const {
  if (s == t) return true;
  auto ls = labels_.For(s);
  auto lt = labels_.For(t);
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (lt[j].hub < ls[i].hub) {
      ++j;
    } else {
      if (ls[i].quality >= w && lt[j].quality >= w) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

Quality WcReachabilityIndex::BestQuality(Vertex s, Vertex t) const {
  if (s == t) return kInfQuality;
  Quality best = -std::numeric_limits<Quality>::infinity();
  auto ls = labels_.For(s);
  auto lt = labels_.For(t);
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (lt[j].hub < ls[i].hub) {
      ++j;
    } else {
      best = std::max(best, std::min(ls[i].quality, lt[j].quality));
      ++i;
      ++j;
    }
  }
  return best;
}

}  // namespace wcsd
