#include "core/directed_wc_index.h"

#include <limits>
#include <vector>

#include "util/epoch_array.h"

namespace wcsd {

namespace {

constexpr Quality kNegInfQuality = -std::numeric_limits<Quality>::infinity();

// Directed constrained-BFS labeler. One instance per direction-pair:
// `forward` decides which arc set is traversed and which label side is
// written. The pruning query for a candidate (root ~> u, d, w) intersects
// the root's FROM-side labels with u's TO-side labels, mirroring the
// undirected builder's L(root)/L(u) check.
class DirectedBuilder {
 public:
  DirectedBuilder(const DirectedQualityGraph& g, const VertexOrder& order)
      : g_(g),
        order_(order),
        in_labels_(g.NumVertices()),
        out_labels_(g.NumVertices()),
        max_quality_(g.NumVertices(), kNegInfQuality),
        in_next_(g.NumVertices(), false) {}

  // Runs all rounds; the label sets are then moved out by the caller.
  void Run() {
    const size_t n = g_.NumVertices();
    for (Rank k = 0; k < n; ++k) {
      // Forward pass: distances root -> u, recorded in L_in(u); covers are
      // checked against L_out(root) x L_in(u).
      Bfs(k, /*forward=*/true);
      // Backward pass: distances u -> root, recorded in L_out(u).
      Bfs(k, /*forward=*/false);
    }
  }

  LabelSet TakeInLabels() { return std::move(in_labels_); }
  LabelSet TakeOutLabels() { return std::move(out_labels_); }

 private:
  struct Frontier {
    Vertex vertex;
    Quality quality;
  };

  void Bfs(Rank k, bool forward) {
    const Vertex root = order_.VertexAt(k);
    LabelSet& target = forward ? in_labels_ : out_labels_;
    const LabelSet& root_side = forward ? out_labels_ : in_labels_;
    const LabelSet& u_side = forward ? in_labels_ : out_labels_;

    max_quality_.Clear();
    max_quality_.Set(root, kInfQuality);
    cur_.clear();
    cur_.push_back(Frontier{root, kInfQuality});

    Distance d = 0;
    while (!cur_.empty()) {
      in_next_.Clear();
      nxt_.clear();
      for (const Frontier& f : cur_) {
        // Prune if the partial index already certifies a w-path of length
        // <= d between root and f.vertex in this direction.
        if (QueryLabelsMerge(root_side.For(root), u_side.For(f.vertex),
                             f.quality) <= d) {
          continue;
        }
        target.Append(f.vertex, LabelEntry{k, d, f.quality});
        auto arcs = forward ? g_.OutNeighbors(f.vertex)
                            : g_.InNeighbors(f.vertex);
        for (const Arc& a : arcs) {
          if (order_.RankOf(a.to) <= k) continue;
          Quality nq = std::min(a.quality, f.quality);
          if (nq <= max_quality_.Get(a.to)) continue;
          max_quality_.Set(a.to, nq);
          if (!in_next_.Get(a.to)) {
            in_next_.Set(a.to, true);
            nxt_.push_back(a.to);
          }
        }
      }
      cur_.clear();
      for (Vertex v : nxt_) {
        cur_.push_back(Frontier{v, max_quality_.Get(v)});
      }
      ++d;
    }
  }

  const DirectedQualityGraph& g_;
  const VertexOrder& order_;
  LabelSet in_labels_;
  LabelSet out_labels_;
  EpochArray<Quality> max_quality_;
  EpochArray<bool> in_next_;
  std::vector<Frontier> cur_;
  std::vector<Vertex> nxt_;
};

}  // namespace

DirectedWcIndex DirectedWcIndex::Build(const DirectedQualityGraph& g) {
  return BuildWithOrder(g, DegreeOrder(g.AsUndirected()));
}

DirectedWcIndex DirectedWcIndex::BuildWithOrder(const DirectedQualityGraph& g,
                                                VertexOrder order) {
  DirectedBuilder builder(g, order);
  builder.Run();
  return DirectedWcIndex(builder.TakeInLabels(), builder.TakeOutLabels(),
                         std::move(order));
}

Distance DirectedWcIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  return QueryLabelsMerge(out_labels_.For(s), in_labels_.For(t), w);
}

}  // namespace wcsd
