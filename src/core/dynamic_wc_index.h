// Dynamic WC-INDEX: the paper's §VIII future-work extension, realized.
//
// Edge INSERTION is handled incrementally in the style of Akiba et al.
// (WWW'14) adapted to the quality dimension: for every label entry
// (h, d, w) of either endpoint, a constrained BFS for hub h is resumed
// across the new edge, pruning against the current index. The result stays
// sound and complete; entries of the updated hub group are kept
// dominance-free, but entries of other hubs may become redundant (covered),
// exactly as in the unweighted dynamic-PLL literature — queries remain
// correct, the index is merely no longer minimal.
//
// Edge DELETION invalidates entries in ways the paper leaves open ("how to
// effectively compute affected vertices will be the focus of future
// research"); we take the conservative correct route and rebuild.

#ifndef WCSD_CORE_DYNAMIC_WC_INDEX_H_
#define WCSD_CORE_DYNAMIC_WC_INDEX_H_

#include <vector>

#include "core/wc_index.h"
#include "graph/graph.h"
#include "labeling/label_set.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

struct DeltaLog;

/// WC-INDEX over a mutable graph.
class DynamicWcIndex {
 public:
  /// Builds the initial index for `g`. The vertex set is fixed; the vertex
  /// order is chosen once from the initial graph and kept across updates.
  explicit DynamicWcIndex(const QualityGraph& g,
                          const WcIndexOptions& options = {});

  /// Adopts an already-built index (labels + order) for `g` without
  /// rebuilding — the offline `update` path: load a snapshot, adopt it,
  /// Apply() a delta log. `labels` and `order` must describe exactly `g`
  /// (same vertex count, queries correct); this is not re-verified here.
  DynamicWcIndex(const QualityGraph& g, VertexOrder order, LabelSet labels,
                 const WcIndexOptions& options = {});

  /// Inserts undirected edge {u, v} with quality q and updates the labels
  /// incrementally. Inserting a parallel edge with lower-or-equal quality
  /// is a no-op; with higher quality it upgrades the edge.
  void InsertEdge(Vertex u, Vertex v, Quality q);

  /// One staged edge for InsertEdges.
  struct EdgeUpdate {
    Vertex u;
    Vertex v;
    Quality quality;
  };

  /// Inserts a batch of edges. If the batch is large relative to the graph
  /// (default: more than 1 staged edge per 8 current edges), incremental
  /// maintenance would churn more than rebuilding, so the index is rebuilt
  /// once instead; otherwise each edge is applied incrementally.
  void InsertEdges(const std::vector<EdgeUpdate>& edges);

  /// Removes edge {u, v} (no-op if absent) and rebuilds the index.
  void DeleteEdge(Vertex u, Vertex v);

  /// Replays a delta log. Insert/upgrade-only logs repair labels in place
  /// (per-batch InsertEdges semantics, so a bulk batch still rebuilds
  /// once); any delete makes incremental repair unsound per the contract
  /// above, so all ops are staged on the graph and the index is rebuilt
  /// once. Returns true when the log was applied incrementally.
  bool Apply(const DeltaLog& log);

  /// w-constrained distance between s and t on the current graph.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Materializes the current graph (tests compare against a fresh build).
  QualityGraph Snapshot() const;

  const LabelSet& labels() const { return labels_; }
  const VertexOrder& order() const { return order_; }
  size_t MemoryBytes() const { return labels_.MemoryBytes(); }

  /// Releases the maintained labels as a serveable WcIndex (not yet
  /// finalized; call Finalize() before SaveSnapshot). The dynamic index is
  /// left empty — discard it afterwards.
  WcIndex ReleaseIndex();

 private:
  // Resumes constrained BFS across new edge (from -> to, quality q) for
  // every hub entry in L(from).
  void ResumeAcross(Vertex from, Vertex to, Quality q);

  // Partial constrained BFS for hub rank h seeded at (seed, d, w).
  void ResumeBfs(Rank h, Vertex seed, Distance d, Quality w);

  // Inserts (h, d, w) into L(u) keeping the hub group sorted and
  // dominance-free.
  void InsertEntry(Vertex u, LabelEntry entry);

  // Rebuilds labels from scratch on the current graph.
  void Rebuild();

  WcIndexOptions options_;
  VertexOrder order_;
  LabelSet labels_;
  std::vector<std::vector<Arc>> adj_;
};

}  // namespace wcsd

#endif  // WCSD_CORE_DYNAMIC_WC_INDEX_H_
