#include "core/verifier.h"

#include <limits>
#include <sstream>
#include <vector>

#include "labeling/query.h"
#include "search/wc_bfs.h"

namespace wcsd {

std::string VerificationReport::Summary() const {
  std::ostringstream out;
  out << "entries=" << entries_checked << " pairs=" << pairs_checked
      << " sound_viol=" << soundness_violations
      << " tight_viol=" << tightness_violations
      << " mono_viol=" << monotonicity_violations
      << " dominated=" << dominated_entries
      << " unnecessary=" << unnecessary_entries
      << " complete_viol=" << completeness_violations
      << (ok() ? " [OK]" : " [FAIL]");
  return out.str();
}

VerificationReport VerifySoundness(const LabelSet& labels,
                                   const VertexOrder& order,
                                   const QualityGraph& g, bool require_tight) {
  VerificationReport report;
  WcBfs bfs(&g);
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    for (const LabelEntry& e : labels.For(v)) {
      ++report.entries_checked;
      Vertex hub_vertex = order.VertexAt(e.hub);
      if (e.quality == kInfQuality) {
        // Self entries: only (v, 0, inf) is a valid infinite-quality path.
        if (hub_vertex != v || e.dist != 0) ++report.soundness_violations;
        continue;
      }
      Distance d = bfs.Query(hub_vertex, v, e.quality);
      if (d > e.dist) ++report.soundness_violations;
      if (require_tight && d != e.dist) ++report.tightness_violations;
    }
  }
  return report;
}

VerificationReport VerifyMonotonicity(const LabelSet& labels) {
  VerificationReport report;
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    auto lv = labels.For(v);
    for (size_t i = 0; i < lv.size(); ++i) {
      ++report.entries_checked;
      if (i == 0 || lv[i - 1].hub != lv[i].hub) continue;
      // Same hub group: require strictly ascending dist AND quality
      // (Theorem 3); any violation implies a dominance relation (Def. 4).
      if (!(lv[i - 1].dist < lv[i].dist && lv[i - 1].quality < lv[i].quality)) {
        ++report.monotonicity_violations;
        ++report.dominated_entries;
      }
    }
  }
  return report;
}

VerificationReport VerifyCompleteness(const WcIndex& index,
                                      const QualityGraph& g) {
  VerificationReport report;
  WcBfs bfs(&g);
  std::vector<Quality> thresholds = g.DistinctQualities();
  // One unsatisfiable threshold: no edge qualifies, so only s == t has a
  // finite answer.
  if (!thresholds.empty()) thresholds.push_back(thresholds.back() + 1.0f);
  const size_t n = g.NumVertices();
  for (Vertex s = 0; s < n; ++s) {
    for (Quality w : thresholds) {
      std::vector<Distance> oracle = bfs.AllDistances(s, w);
      for (Vertex t = 0; t < n; ++t) {
        ++report.pairs_checked;
        if (index.Query(s, t, w) != oracle[t]) {
          ++report.completeness_violations;
        }
      }
    }
  }
  return report;
}

VerificationReport VerifyMinimality(const WcIndex& index) {
  VerificationReport report = VerifyMonotonicity(index.labels());
  const LabelSet& labels = index.labels();
  const VertexOrder& order = index.order();
  for (Vertex v = 0; v < labels.NumVertices(); ++v) {
    auto lv = labels.For(v);
    for (size_t i = 0; i < lv.size(); ++i) {
      const LabelEntry& e = lv[i];
      Vertex hub_vertex = order.VertexAt(e.hub);
      if (hub_vertex == v) continue;  // Self entries are trivially needed.
      // Necessity: with e removed, the query (v, hub_vertex, e.quality)
      // must no longer be answerable within e.dist.
      std::vector<LabelEntry> without(lv.begin(), lv.end());
      without.erase(without.begin() + static_cast<ptrdiff_t>(i));
      Distance covered = QueryLabelsMerge(
          {without.data(), without.size()}, labels.For(hub_vertex), e.quality);
      if (covered <= e.dist) ++report.unnecessary_entries;
    }
  }
  return report;
}

namespace {
void Merge(VerificationReport* into, const VerificationReport& from) {
  into->entries_checked += from.entries_checked;
  into->pairs_checked += from.pairs_checked;
  into->soundness_violations += from.soundness_violations;
  into->tightness_violations += from.tightness_violations;
  into->monotonicity_violations += from.monotonicity_violations;
  into->dominated_entries += from.dominated_entries;
  into->unnecessary_entries += from.unnecessary_entries;
  into->completeness_violations += from.completeness_violations;
}
}  // namespace

VerificationReport VerifyAll(const WcIndex& index, const QualityGraph& g) {
  VerificationReport report =
      VerifySoundness(index.labels(), index.order(), g, /*require_tight=*/true);
  Merge(&report, VerifyCompleteness(index, g));
  Merge(&report, VerifyMinimality(index));
  return report;
}

}  // namespace wcsd
