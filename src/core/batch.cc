#include "core/batch.h"

#include <algorithm>
#include <memory>

#include "serve/query_engine.h"

namespace wcsd {

std::vector<Distance> BatchQuery(const WcIndex& index,
                                 const std::vector<BatchQueryInput>& queries,
                                 size_t threads) {
  std::vector<Distance> results(queries.size(), kInfDistance);
  if (queries.empty()) return results;
  QueryEngineOptions options;
  // Cap workers at one chunk each: spawning threads a transient pool
  // cannot feed is pure startup overhead.
  size_t max_useful =
      (queries.size() + options.min_chunk - 1) / options.min_chunk;
  threads = std::max<size_t>(1, std::min(threads, max_useful));
  if (threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = index.Query(queries[i].s, queries[i].t, queries[i].w);
    }
    return results;
  }

  // Route through the serving engine: a transient QueryEngine wrapping the
  // caller's index (non-owning alias — the index outlives this call).
  // Long-lived servers should hold a QueryEngine directly and amortize the
  // pool across batches.
  options.num_threads = threads;
  QueryEngine engine(
      std::shared_ptr<const WcIndex>(std::shared_ptr<const void>(), &index),
      options);
  return engine.Batch(queries);
}

std::vector<RankedCandidate> TopKClosest(const WcIndex& index, Vertex source,
                                         const std::vector<Vertex>& candidates,
                                         Quality w, size_t k) {
  return TopKClosestOverLabels(
      index.NumVertices(), source, candidates, w, k,
      [&index](Vertex v) { return index.EntriesFor(v); });
}

std::vector<ProfilePoint> QualityProfile(const WcIndex& index, Vertex s,
                                         Vertex t,
                                         const std::vector<Quality>& thresholds,
                                         size_t* label_merges) {
  return QualityProfileOverIntervals(
      thresholds,
      [&](Quality w) { return index.QueryWithInterval(s, t, w); },
      label_merges);
}

}  // namespace wcsd
