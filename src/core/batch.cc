#include "core/batch.h"

#include <algorithm>
#include <thread>

namespace wcsd {

std::vector<Distance> BatchQuery(const WcIndex& index,
                                 const std::vector<BatchQueryInput>& queries,
                                 size_t threads) {
  std::vector<Distance> results(queries.size(), kInfDistance);
  if (queries.empty()) return results;
  threads = std::max<size_t>(1, std::min(threads, queries.size()));
  if (threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = index.Query(queries[i].s, queries[i].t, queries[i].w);
    }
    return results;
  }

  // Contiguous chunking: queries are independent and the index is
  // read-only, so plain threads suffice (no synchronization needed).
  std::vector<std::thread> workers;
  workers.reserve(threads);
  size_t chunk = (queries.size() + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(queries.size(), begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&index, &queries, &results, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        results[i] = index.Query(queries[i].s, queries[i].t, queries[i].w);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return results;
}

std::vector<RankedCandidate> TopKClosest(const WcIndex& index, Vertex source,
                                         const std::vector<Vertex>& candidates,
                                         Quality w, size_t k) {
  std::vector<RankedCandidate> ranked;
  ranked.reserve(candidates.size());
  for (Vertex c : candidates) {
    Distance d = index.Query(source, c, w);
    if (d != kInfDistance) ranked.push_back({c, d});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.vertex < b.vertex;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<ProfilePoint> QualityProfile(
    const WcIndex& index, Vertex s, Vertex t,
    const std::vector<Quality>& thresholds) {
  std::vector<ProfilePoint> profile;
  profile.reserve(thresholds.size());
  for (Quality w : thresholds) {
    profile.push_back({w, index.Query(s, t, w)});
  }
  return profile;
}

}  // namespace wcsd
