// Quality-constrained reachability: the boolean sibling of WCSD.
//
// The paper's related-work line (weight-constrained reachability, Qiao et
// al.; the authors' label-constrained reachability systems) asks only
// whether SOME w-path exists. That answer needs far less index than the
// distance problem: per (vertex, hub) group only the maximum-quality entry
// matters, because an entry pair certifies reachability at w iff both
// qualities are >= w, and Theorem 3 places each group's maximum quality on
// its last entry. Reducing WC-INDEX labels to that one entry per group
// yields a reachability oracle several times smaller that shares the same
// soundness/completeness argument.

#ifndef WCSD_CORE_REACHABILITY_H_
#define WCSD_CORE_REACHABILITY_H_

#include "core/wc_index.h"
#include "graph/graph.h"
#include "labeling/label_set.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// 2-hop oracle for "does a w-path from s to t exist?".
class WcReachabilityIndex {
 public:
  /// Builds by reducing a full WC-INDEX (cheapest when one is already at
  /// hand; the reduction itself is linear in the label size).
  static WcReachabilityIndex FromWcIndex(const WcIndex& index);

  /// Convenience: builds the WC-INDEX internally, then reduces it.
  static WcReachabilityIndex Build(const QualityGraph& g,
                                   const WcIndexOptions& options = {});

  /// True iff some w-path connects s and t.
  bool Reachable(Vertex s, Vertex t, Quality w) const;

  /// The best (maximum) quality threshold under which t is reachable from
  /// s, or -infinity if they are disconnected entirely. This is the
  /// "highest sustainable bandwidth class" primitive of the QoS scenario.
  Quality BestQuality(Vertex s, Vertex t) const;

  const LabelSet& labels() const { return labels_; }
  size_t MemoryBytes() const { return labels_.MemoryBytes(); }
  size_t TotalEntries() const { return labels_.TotalEntries(); }

 private:
  WcReachabilityIndex(LabelSet labels, VertexOrder order)
      : labels_(std::move(labels)), order_(std::move(order)) {}

  LabelSet labels_;
  VertexOrder order_;
};

}  // namespace wcsd

#endif  // WCSD_CORE_REACHABILITY_H_
