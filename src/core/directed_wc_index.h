// WC-INDEX on directed graphs (paper §V "Directed and Weighted Graphs").
//
// Each vertex keeps two label sets: L_out(u) holds (hub, dist(u -> hub), w)
// entries built by constrained BFS over REVERSED arcs from each hub, and
// L_in(u) holds (hub, dist(hub -> u), w) built over forward arcs. A query
// (s, t, w) intersects L_out(s) with L_in(t) — exactly the paper's
// prescription of one constrained BFS per direction per vertex.

#ifndef WCSD_CORE_DIRECTED_WC_INDEX_H_
#define WCSD_CORE_DIRECTED_WC_INDEX_H_

#include "graph/directed_graph.h"
#include "labeling/label_set.h"
#include "labeling/query.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// Directed WC-INDEX with in/out label sets.
class DirectedWcIndex {
 public:
  /// Builds the index; the vertex order is the degree order of the
  /// undirected view (in-degree + out-degree).
  static DirectedWcIndex Build(const DirectedQualityGraph& g);

  /// Builds with an explicit vertex order.
  static DirectedWcIndex BuildWithOrder(const DirectedQualityGraph& g,
                                        VertexOrder order);

  /// w-constrained directed distance s -> t.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  const LabelSet& in_labels() const { return in_labels_; }
  const LabelSet& out_labels() const { return out_labels_; }
  const VertexOrder& order() const { return order_; }

  size_t MemoryBytes() const {
    return in_labels_.MemoryBytes() + out_labels_.MemoryBytes();
  }
  size_t TotalEntries() const {
    return in_labels_.TotalEntries() + out_labels_.TotalEntries();
  }

 private:
  DirectedWcIndex(LabelSet in_labels, LabelSet out_labels, VertexOrder order)
      : in_labels_(std::move(in_labels)),
        out_labels_(std::move(out_labels)),
        order_(std::move(order)) {}

  LabelSet in_labels_;
  LabelSet out_labels_;
  VertexOrder order_;
};

}  // namespace wcsd

#endif  // WCSD_CORE_DIRECTED_WC_INDEX_H_
