#include "core/weighted_wc_index.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "util/epoch_array.h"

namespace wcsd {

namespace {

constexpr Quality kNegInfQuality = -std::numeric_limits<Quality>::infinity();

// Priority-queue candidate, ordered by (dist asc, quality desc): among
// equal distances the best quality surfaces first, so it is inserted and
// the rest are dominated — the Dijkstra form of the paper's quality order.
struct Candidate {
  Distance dist;
  Quality quality;
  Vertex vertex;

  bool operator>(const Candidate& other) const {
    if (dist != other.dist) return dist > other.dist;
    return quality < other.quality;
  }
};

VertexOrder WeightedDegreeOrder(const WeightedQualityGraph& g) {
  std::vector<Vertex> by_rank(g.NumVertices());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::stable_sort(by_rank.begin(), by_rank.end(), [&g](Vertex a, Vertex b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });
  return VertexOrder(std::move(by_rank));
}

}  // namespace

WeightedWcIndex WeightedWcIndex::Build(const WeightedQualityGraph& g) {
  return BuildWithOrder(g, WeightedDegreeOrder(g));
}

WeightedWcIndex WeightedWcIndex::BuildWithOrder(const WeightedQualityGraph& g,
                                                VertexOrder order) {
  const size_t n = g.NumVertices();
  LabelSet labels(n);
  // R vector: maximum quality among candidates already POPPED per vertex.
  // Pops arrive in ascending distance, so a pop with quality <= R(v) is
  // dominated (Def. 4) by an earlier pop.
  EpochArray<Quality> max_quality(n, kNegInfQuality);

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
      queue;
  for (Rank k = 0; k < n; ++k) {
    const Vertex root = order.VertexAt(k);
    max_quality.Clear();
    while (!queue.empty()) queue.pop();
    queue.push(Candidate{0, kInfQuality, root});

    while (!queue.empty()) {
      Candidate c = queue.top();
      queue.pop();
      if (c.quality <= max_quality.Get(c.vertex)) continue;  // Dominated.
      max_quality.Set(c.vertex, c.quality);
      // Dominance-prune against the partial index.
      if (QueryLabelsMerge(labels.For(root), labels.For(c.vertex),
                           c.quality) <= c.dist) {
        continue;
      }
      labels.Append(c.vertex, LabelEntry{k, c.dist, c.quality});
      for (const WeightedArc& a : g.Neighbors(c.vertex)) {
        if (order.RankOf(a.to) <= k) continue;
        Quality nq = std::min(a.quality, c.quality);
        if (nq <= max_quality.Get(a.to)) continue;  // Already dominated.
        queue.push(Candidate{c.dist + a.length, nq, a.to});
      }
    }
  }
  return WeightedWcIndex(std::move(labels), std::move(order));
}

Distance WeightedWcIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  return QueryLabelsMerge(labels_.For(s), labels_.For(t), w);
}

}  // namespace wcsd
