// WC-INDEX on weighted graphs (paper §V: "In cases where the length of an
// edge is not 1 ... we can convert the constrained BFS to a constrained
// Dijkstra").
//
// Construction pops candidates in (distance asc, quality desc) order — the
// Dijkstra analogue of the distance-priority / quality-priority discipline —
// so the per-(root, vertex) entry stream keeps the Theorem 3 monotonicity
// and the dominance pruning carries over unchanged.

#ifndef WCSD_CORE_WEIGHTED_WC_INDEX_H_
#define WCSD_CORE_WEIGHTED_WC_INDEX_H_

#include "graph/weighted_graph.h"
#include "labeling/label_set.h"
#include "labeling/query.h"
#include "order/vertex_order.h"
#include "util/types.h"

namespace wcsd {

/// WC-INDEX over a weighted quality graph.
class WeightedWcIndex {
 public:
  /// Builds with the degree order of `g`.
  static WeightedWcIndex Build(const WeightedQualityGraph& g);

  /// Builds with an explicit vertex order.
  static WeightedWcIndex BuildWithOrder(const WeightedQualityGraph& g,
                                        VertexOrder order);

  /// w-constrained shortest summed-length distance between s and t.
  Distance Query(Vertex s, Vertex t, Quality w) const;

  const LabelSet& labels() const { return labels_; }
  const VertexOrder& order() const { return order_; }
  size_t MemoryBytes() const { return labels_.MemoryBytes(); }
  size_t TotalEntries() const { return labels_.TotalEntries(); }

 private:
  WeightedWcIndex(LabelSet labels, VertexOrder order)
      : labels_(std::move(labels)), order_(std::move(order)) {}

  LabelSet labels_;
  VertexOrder order_;
};

}  // namespace wcsd

#endif  // WCSD_CORE_WEIGHTED_WC_INDEX_H_
