// WC-INDEX: the paper's primary contribution (§IV).
//
// A single 2-hop labeling answering w-constrained distance queries for
// arbitrary real thresholds w. Construction (Algorithm 3) runs one
// constrained BFS per vertex in a chosen vertex order, with:
//   * distance-prioritized, quality-prioritized search (level-synchronous
//     BFS whose per-level frontier keeps only the maximum-quality path per
//     vertex via the R vector) — Lemma 1;
//   * dominance pruning against the partial index (Line 11's QUERY), which
//     yields a Sound, Complete, and Minimal index (Theorem 1);
//   * the §IV.C engineering: O(1)-reset scratch arrays, a per-root hub
//     table making each pruning query O(|L(u)|), and the "Further Pruning"
//     memo of satisfied queries.

#ifndef WCSD_CORE_WC_INDEX_H_
#define WCSD_CORE_WC_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "labeling/compressed_flat.h"
#include "labeling/flat_label_set.h"
#include "labeling/label_set.h"
#include "labeling/snapshot.h"
#include "labeling/query.h"
#include "order/vertex_order.h"
#include "util/status.h"
#include "util/types.h"

namespace wcsd {

/// Construction options.
struct WcIndexOptions {
  /// Vertex-ordering scheme (§IV.D).
  enum class Ordering {
    kDegree,             // canonical PLL order; paper's WC-INDEX basic
    kTreeDecomposition,  // MDE hierarchy (roads)
    kHybrid,             // degree core + MDE periphery; paper's WC-INDEX+
    kRandom,             // ablation baseline
    kIdentity,           // vertex-id order; golden tests vs. the paper
  };

  Ordering ordering = Ordering::kDegree;

  /// Hybrid degree threshold delta; 0 = choose automatically.
  size_t hybrid_degree_threshold = 0;

  /// Seed for kRandom ordering.
  uint64_t seed = 42;

  /// Use the §IV.C query-efficient construction (per-root hub table +
  /// binary search). False = re-resolve hub groups per pruning query, the
  /// plain WC-INDEX of the experiments.
  bool query_efficient = true;

  /// Enable the "Further Pruning" memo of satisfied construction queries.
  bool further_pruning = true;

  /// Construction threads. 1 = the exact sequential Algorithm 3 loop;
  /// 0 = auto (hardware concurrency); N > 1 = rank-batched parallel
  /// pipeline. Any value produces a bit-identical index (tested): workers
  /// run the constrained BFS of a batch of roots against the immutable
  /// snapshot of the index from prior batches, and a sequential rank-order
  /// re-prune merge restores exactly the minimal index of Theorem 1.
  size_t num_threads = 1;

  /// Roots per parallel batch (num_threads > 1 only). 0 = auto: batches
  /// start at num_threads and double up to a cap, so the early high-rank
  /// roots — whose labels prune everything downstream — are merged into the
  /// snapshot quickly, bounding wasted candidate work.
  size_t batch_size = 0;

  /// Record BFS parents per label entry (the paper's §V quad labels
  /// (u, d_u, w_u, p_uv)), enabling path reconstruction. Adds one Vertex of
  /// storage per entry. SaveSnapshot serializes them as the optional v2
  /// parents section, so mmap-loaded snapshots keep the fast unwind.
  bool record_parents = false;

  /// Preset matching the paper's WC-INDEX: the basic construction query
  /// (Algorithm 4 per pop), no memo. The ordering matches WC-INDEX+ — the
  /// paper's Exp 2 notes both "use the same vertex ordering", which is why
  /// their index sizes coincide; only construction time differs.
  static WcIndexOptions Basic() {
    WcIndexOptions o;
    o.ordering = Ordering::kHybrid;
    o.query_efficient = false;
    o.further_pruning = false;
    return o;
  }

  /// Preset matching the paper's WC-INDEX+: hybrid order, query-efficient.
  static WcIndexOptions Plus() {
    WcIndexOptions o;
    o.ordering = Ordering::kHybrid;
    o.query_efficient = true;
    o.further_pruning = true;
    return o;
  }
};

/// Counters recorded during construction (reported by the benches).
struct WcIndexBuildStats {
  size_t entries_added = 0;
  size_t pops = 0;
  size_t pruned_by_query = 0;
  size_t pruned_by_memo = 0;
  size_t relaxations = 0;
  double build_seconds = 0.0;
};

/// The WC-INDEX (Def. 6): per-vertex sets of (hub, distance, quality)
/// entries describing minimal w-paths.
class WcIndex {
 public:
  /// Builds the index for `g`, deriving the vertex order from options.
  static WcIndex Build(const QualityGraph& g,
                       const WcIndexOptions& options = {});

  /// Builds with an explicit, caller-supplied vertex order.
  static WcIndex BuildWithOrder(const QualityGraph& g, VertexOrder order,
                                const WcIndexOptions& options = {});

  /// w-constrained distance between s and t (Query+, Algorithm 5).
  Distance Query(Vertex s, Vertex t, Quality w) const;

  /// Same, with an explicit query implementation (ablation).
  Distance Query(Vertex s, Vertex t, Quality w, QueryImpl impl) const;

  /// Query that also reports the witnessing hub (path reconstruction).
  HubQueryResult QueryWithHub(Vertex s, Vertex t, Quality w) const;

  /// Query that also reports the maximal constraint interval over which
  /// the answer is unchanged (labeling/query.h IntervalQueryResult) — what
  /// the serve-side result cache stores. Out-of-range and s == t queries
  /// answer with the everywhere-valid interval.
  IntervalQueryResult QueryWithInterval(Vertex s, Vertex t, Quality w) const;

  /// True if some w-path connects s and t.
  bool Reachable(Vertex s, Vertex t, Quality w) const {
    return Query(s, t, w) != kInfDistance;
  }

  const LabelSet& labels() const { return labels_; }
  const VertexOrder& order() const { return order_; }
  const WcIndexBuildStats& build_stats() const { return stats_; }

  /// Packs the labels into the flat CSR backend and routes all subsequent
  /// queries through it. Idempotent; the append-oriented labels() remain
  /// available (the dynamic-update subsystem needs them mutable).
  void Finalize();

  /// True once Finalize() has run.
  bool finalized() const { return finalized_; }

  /// The flat backend; only meaningful when finalized() and not
  /// compressed() (a compressed-snapshot load leaves it empty).
  const FlatLabelSet& flat_labels() const { return flat_; }

  /// True when queries route through the compressed backend — the index
  /// was mmap-loaded from a v3 compressed snapshot. The flat backend is
  /// empty; labels decode per vertex on demand.
  bool compressed() const { return compressed_backend_; }

  /// The compressed backend; only meaningful when compressed().
  const CompressedFlatLabelSet& compressed_labels() const {
    return compressed_;
  }

  /// Content fingerprint of the served labels, identical across storage
  /// backends (IndexContentFingerprint of the flat arrays; the compressed
  /// backend reproduces it through a decode pass). Requires finalized().
  uint64_t ContentFingerprint() const;

  /// Entries of L(v) from whichever backend queries route through — the
  /// flat CSR once finalized (mmap-loaded indexes have empty
  /// append-oriented labels), the heap vectors before that. On the
  /// compressed backend the label is decoded into thread-local scratch:
  /// the span stays valid until the SAME thread's second-next EntriesFor
  /// call (two scratch slots rotate, so holding s's and t's entries at
  /// once — the query-kernel shape — is safe).
  std::span<const LabelEntry> EntriesFor(Vertex v) const {
    if (compressed_backend_) return DecodedView(v).entries;
    return finalized_ ? flat_.For(v) : labels_.For(v);
  }

  /// True if §V quad labels (BFS parents) are available — recorded at
  /// build time, or loaded from a v2 snapshot's parents section.
  bool has_parents() const {
    return !parents_.empty() || !flat_parents_.empty();
  }

  /// Parents aligned index-for-index with the vertex's label entries
  /// (labels().For(v) and the flat backend pack entries in the same
  /// per-vertex order): Parents(v)[i] is the predecessor of v on the
  /// minimal path witnessing entry i (kNullVertex for self entries).
  /// Empty unless has_parents().
  std::span<const Vertex> Parents(Vertex v) const {
    if (!parents_.empty()) {
      const auto& pv = parents_[v];
      return {pv.data(), pv.size()};
    }
    if (!flat_parents_.empty()) {
      auto offsets = flat_.raw_offsets();
      return flat_parents_.subspan(
          offsets[v], offsets[v + 1] - offsets[v]);
    }
    return {};
  }

  /// The whole per-entry parent array in flat-entry order; empty unless
  /// the index was mmap-loaded from a snapshot with a parents section.
  /// (Heap-built indexes keep parents per vertex; SaveSnapshot flattens
  /// them on write.)
  std::span<const Vertex> flat_parents() const { return flat_parents_; }

  /// Number of vertices indexed. Routed through the serving backend once
  /// finalized so mmap-loaded indexes (whose append-oriented labels() are
  /// empty) report correctly.
  size_t NumVertices() const {
    if (compressed_backend_) return compressed_.NumVertices();
    return finalized_ ? flat_.NumVertices() : labels_.NumVertices();
  }

  /// Index size in bytes (Figures 6/9/11 report this). A finalized index
  /// reports the backend it serves queries from — the compressed bytes
  /// for a compressed-snapshot load.
  size_t MemoryBytes() const {
    if (compressed_backend_) return compressed_.MemoryBytes();
    return finalized_ ? flat_.MemoryBytes() : labels_.MemoryBytes();
  }

  /// Total number of label entries.
  size_t TotalEntries() const {
    if (compressed_backend_) return compressed_.TotalEntries();
    return finalized_ ? flat_.TotalEntries() : labels_.TotalEntries();
  }

  /// Serialization of the append-oriented labels (little-endian,
  /// fixed-width fields; requires a full deserialization pass on Load).
  Status Save(const std::string& path) const;
  static Result<WcIndex> Load(const std::string& path);

  /// Writes the finalized flat backend plus the vertex order as a
  /// page-aligned, checksummed snapshot (labeling/snapshot.h). Requires
  /// finalized(). Parent quads, when present, are flattened and written
  /// as the v2 parents section so LoadMmap keeps path reconstruction on
  /// the fast unwind. `write_options.compress` stores the labels in the
  /// v3 compressed sections (refused when the index carries parents); a
  /// compressed-backend index re-materializes its flat arrays first, so
  /// this is also the compress/decompress migration path.
  Status SaveSnapshot(const std::string& path,
                      const SnapshotWriteOptions& write_options = {}) const;

  /// Maps a snapshot written by SaveSnapshot and serves queries directly
  /// out of the mapping: no per-entry deserialization, load time
  /// independent of label count. The result is finalized; its
  /// append-oriented labels() are empty, so dynamic updates and
  /// construction-side reuse need Load instead. Only full-range snapshots
  /// with an order section qualify — shard files go through
  /// ShardedQueryEngine. A v3 compressed snapshot loads into the
  /// compressed backend (see compressed()): label bytes stay on disk and
  /// page in on first decode.
  static Result<WcIndex> LoadMmap(const std::string& path,
                                  const SnapshotLoadOptions& options = {});

 private:
  friend class WcIndexBuilder;
  friend class DynamicWcIndex;

  WcIndex() = default;
  WcIndex(LabelSet labels, VertexOrder order, WcIndexBuildStats stats)
      : labels_(std::move(labels)),
        order_(std::move(order)),
        stats_(stats) {}

  /// Decodes L(v) of the compressed backend into thread-local scratch and
  /// returns a view over it. Two scratch slots rotate per thread, so at
  /// most two returned views are simultaneously valid — exactly the shape
  /// every query kernel needs (s and t).
  FlatLabelView DecodedView(Vertex v) const;

  LabelSet labels_;
  FlatLabelSet flat_;
  CompressedFlatLabelSet compressed_;
  bool compressed_backend_ = false;
  bool finalized_ = false;
  VertexOrder order_;
  WcIndexBuildStats stats_;
  std::vector<std::vector<Vertex>> parents_;
  /// Per-entry parents in flat-entry order, pointing into an mmap'd
  /// snapshot (kept alive by flat_'s mapping). Mutually exclusive with
  /// parents_ in practice: set only by LoadMmap.
  std::span<const Vertex> flat_parents_;
};

/// Resolves an Ordering scheme to a concrete vertex order for `g`.
VertexOrder MakeOrder(const QualityGraph& g, const WcIndexOptions& options);

}  // namespace wcsd

#endif  // WCSD_CORE_WC_INDEX_H_
