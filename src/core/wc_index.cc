#include "core/wc_index.h"

#include <cassert>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "order/hybrid_order.h"
#include "order/tree_decomposition.h"
#include "util/epoch_array.h"
#include "util/timer.h"

namespace wcsd {

namespace {
constexpr Quality kNegInfQuality = -std::numeric_limits<Quality>::infinity();
}  // namespace

VertexOrder MakeOrder(const QualityGraph& g, const WcIndexOptions& options) {
  switch (options.ordering) {
    case WcIndexOptions::Ordering::kDegree:
      return DegreeOrder(g);
    case WcIndexOptions::Ordering::kTreeDecomposition:
      return TreeDecompositionOrder(g);
    case WcIndexOptions::Ordering::kHybrid: {
      HybridOptions h;
      h.degree_threshold = options.hybrid_degree_threshold != 0
                               ? options.hybrid_degree_threshold
                               : AutoDegreeThreshold(g);
      return HybridOrder(g, h);
    }
    case WcIndexOptions::Ordering::kRandom:
      return RandomOrder(g.NumVertices(), options.seed);
    case WcIndexOptions::Ordering::kIdentity:
      return IdentityOrder(g.NumVertices());
  }
  return DegreeOrder(g);
}

/// One-shot builder implementing Algorithm 3. Scratch state lives for the
/// whole build and is epoch-reset between roots (§IV.C Efficient
/// Initialization).
class WcIndexBuilder {
 public:
  WcIndexBuilder(const QualityGraph& g, VertexOrder order,
                 const WcIndexOptions& options)
      : g_(g),
        order_(std::move(order)),
        options_(options),
        labels_(g.NumVertices()),
        max_quality_(g.NumVertices(), kNegInfQuality),
        in_next_(g.NumVertices(), false),
        memo_quality_(g.NumVertices(), kNegInfQuality),
        hub_group_begin_(g.NumVertices(), 0),
        hub_group_end_(g.NumVertices(), 0),
        pred_(g.NumVertices(), kNullVertex) {
    if (options.record_parents) parents_.resize(g.NumVertices());
  }

  WcIndex Run() {
    Timer timer;
    const size_t n = g_.NumVertices();
    for (Rank k = 0; k < n; ++k) {
      BfsFromRoot(k);
    }
    stats_.build_seconds = timer.Seconds();
    WcIndex index(std::move(labels_), std::move(order_), stats_);
    index.parents_ = std::move(parents_);
    return index;
  }

 private:
  // Frontier entry: the paper's queue tuple (u, d, w) with d implicit in
  // the level structure, plus the BFS predecessor for §V quad labels.
  struct Frontier {
    Vertex vertex;
    Quality quality;
    Vertex parent;
  };

  // Constrained BFS from the k-th vertex in the order (Algorithm 3 lines
  // 3-17).
  void BfsFromRoot(Rank k) {
    const Vertex root = order_.VertexAt(k);

    // Per-root scratch reset (O(1) via epochs): R vector (line 4), the
    // satisfied-query memo, and the root's hub lookup table.
    max_quality_.Clear();
    memo_quality_.Clear();
    pred_.Clear();
    if (options_.query_efficient) BuildHubTable(root);

    max_quality_.Set(root, kInfQuality);
    cur_.clear();
    nxt_.clear();
    cur_.push_back(Frontier{root, kInfQuality, kNullVertex});

    Distance d = 0;
    while (!cur_.empty()) {
      in_next_.Clear();
      nxt_.clear();
      for (const Frontier& f : cur_) {
        ++stats_.pops;
        if (!ProcessPop(k, root, f.vertex, d, f.quality, f.parent)) continue;
        Relax(k, f.vertex, f.quality);
      }
      // Line 17: only after the whole level is processed are the updated
      // vertices pushed, each once, with the maximal quality seen (the
      // quality-priority order at no extra cost).
      cur_.clear();
      for (Vertex v : nxt_) {
        cur_.push_back(Frontier{v, max_quality_.Get(v), pred_.Get(v)});
      }
      ++d;
    }
  }

  // Lines 11-12: dominance-prune against the partial index, else append the
  // new entry. Returns true if the entry was added (and should expand).
  bool ProcessPop(Rank k, Vertex root, Vertex u, Distance d, Quality w,
                  Vertex parent) {
    if (options_.further_pruning && memo_quality_.Get(u) >= w) {
      ++stats_.pruned_by_memo;
      return false;
    }
    bool covered = options_.query_efficient
                       ? CoveredFast(root, u, d, w)
                       : CoveredBasic(root, u, d, w);
    if (covered) {
      ++stats_.pruned_by_query;
      if (options_.further_pruning) memo_quality_.Set(u, w);
      return false;
    }
    labels_.Append(u, LabelEntry{k, d, w});
    if (!parents_.empty()) parents_[u].push_back(parent);
    ++stats_.entries_added;
    return true;
  }

  // Lines 13-16: explore higher-ranked neighbors, keeping per vertex only
  // the maximum-quality candidate for the next level (the R test).
  void Relax(Rank k, Vertex u, Quality w) {
    for (const Arc& a : g_.Neighbors(u)) {
      if (order_.RankOf(a.to) <= k) continue;
      ++stats_.relaxations;
      Quality next_quality = std::min(a.quality, w);
      if (next_quality <= max_quality_.Get(a.to)) continue;
      max_quality_.Set(a.to, next_quality);
      pred_.Set(a.to, u);
      if (!in_next_.Get(a.to)) {
        in_next_.Set(a.to, true);
        nxt_.push_back(a.to);
      }
    }
  }

  // Per-root hub table T (§IV.C "Querying"): hub rank -> entry range in
  // L(root). Built once per root in O(|L(root)|).
  void BuildHubTable(Vertex root) {
    hub_group_begin_.Clear();
    hub_group_end_.Clear();
    auto lr = labels_.For(root);
    size_t i = 0;
    while (i < lr.size()) {
      size_t ie = i + 1;
      while (ie < lr.size() && lr[ie].hub == lr[i].hub) ++ie;
      hub_group_begin_.Set(lr[i].hub, static_cast<uint32_t>(i));
      hub_group_end_.Set(lr[i].hub, static_cast<uint32_t>(ie));
      i = ie;
    }
  }

  // Query-efficient cover check: one pass over L(u), O(1) root-side group
  // lookup through T, binary searches inside groups (Theorem 3).
  bool CoveredFast(Vertex root, Vertex u, Distance d, Quality w) {
    auto lr = labels_.For(root);
    auto lu = labels_.For(u);
    size_t i = 0;
    while (i < lu.size()) {
      size_t ie = i + 1;
      Rank hub = lu[i].hub;
      while (ie < lu.size() && lu[ie].hub == hub) ++ie;
      if (hub_group_begin_.Contains(hub)) {
        size_t rb = hub_group_begin_.Get(hub);
        size_t re = hub_group_end_.Get(hub);
        size_t ri = FirstWithQuality(lr, rb, re, w);
        if (ri != re) {
          size_t ui = FirstWithQuality(lu, i, ie, w);
          if (ui != ie && lr[ri].dist + lu[ui].dist <= d) return true;
        }
      }
      i = ie;
    }
    return false;
  }

  // Basic cover check (plain WC-INDEX): re-resolve hub groups with binary
  // search over L(root) for every query — Algorithm 4 shape.
  bool CoveredBasic(Vertex root, Vertex u, Distance d, Quality w) {
    return QueryLabelsHubGrouped(labels_.For(root), labels_.For(u), w) <= d;
  }

  const QualityGraph& g_;
  VertexOrder order_;
  WcIndexOptions options_;
  LabelSet labels_;
  WcIndexBuildStats stats_;

  EpochArray<Quality> max_quality_;  // the paper's R vector
  EpochArray<bool> in_next_;
  EpochArray<Quality> memo_quality_;
  EpochArray<uint32_t> hub_group_begin_;
  EpochArray<uint32_t> hub_group_end_;
  EpochArray<Vertex> pred_;
  std::vector<Frontier> cur_;
  std::vector<Vertex> nxt_;
  std::vector<std::vector<Vertex>> parents_;
};

WcIndex WcIndex::Build(const QualityGraph& g, const WcIndexOptions& options) {
  return BuildWithOrder(g, MakeOrder(g, options), options);
}

WcIndex WcIndex::BuildWithOrder(const QualityGraph& g, VertexOrder order,
                                const WcIndexOptions& options) {
  assert(order.size() == g.NumVertices());
  WcIndexBuilder builder(g, std::move(order), options);
  return builder.Run();
}

Distance WcIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  return QueryLabelsMerge(labels_.For(s), labels_.For(t), w);
}

Distance WcIndex::Query(Vertex s, Vertex t, Quality w, QueryImpl impl) const {
  if (s == t) return 0;
  return QueryLabels(labels_.For(s), labels_.For(t), w, impl);
}

HubQueryResult WcIndex::QueryWithHub(Vertex s, Vertex t, Quality w) const {
  if (s == t) {
    HubQueryResult r;
    r.dist = 0;
    r.via_hub = order_.RankOf(s);
    r.dist_from_s = 0;
    r.dist_to_t = 0;
    return r;
  }
  return QueryLabelsMergeWithHub(labels_.For(s), labels_.For(t), w);
}

namespace {
constexpr uint64_t kIndexMagic = 0x57435344'494e4458ULL;  // "WCSDINDX"
}  // namespace

Status WcIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kIndexMagic), sizeof(kIndexMagic));
  uint64_t n = labels_.NumVertices();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(order_.by_rank().data()),
            static_cast<std::streamsize>(n * sizeof(Vertex)));
  for (uint64_t v = 0; v < n; ++v) {
    auto lv = labels_.For(static_cast<Vertex>(v));
    uint64_t count = lv.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(lv.data()),
              static_cast<std::streamsize>(count * sizeof(LabelEntry)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<WcIndex> WcIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint64_t magic = 0, n = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kIndexMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::Corruption("truncated header in " + path);
  std::vector<Vertex> by_rank(n);
  in.read(reinterpret_cast<char*>(by_rank.data()),
          static_cast<std::streamsize>(n * sizeof(Vertex)));
  if (!in) return Status::Corruption("truncated order in " + path);

  WcIndex index;
  index.order_ = VertexOrder(std::move(by_rank));
  if (!index.order_.IsValid()) {
    return Status::Corruption("order is not a permutation in " + path);
  }
  index.labels_ = LabelSet(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in) return Status::Corruption("truncated label count in " + path);
    auto* lv = index.labels_.Mutable(static_cast<Vertex>(v));
    lv->resize(count);
    in.read(reinterpret_cast<char*>(lv->data()),
            static_cast<std::streamsize>(count * sizeof(LabelEntry)));
    if (!in) return Status::Corruption("truncated label entries in " + path);
  }
  if (!index.labels_.IsSorted()) {
    return Status::Corruption("unsorted labels in " + path);
  }
  return index;
}

}  // namespace wcsd
