#include "core/wc_index.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "labeling/shard_manifest.h"
#include "order/hybrid_order.h"
#include "order/tree_decomposition.h"
#include "util/endian.h"
#include "util/epoch_array.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace wcsd {

namespace {

constexpr Quality kNegInfQuality = -std::numeric_limits<Quality>::infinity();

size_t ResolveThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

VertexOrder MakeOrder(const QualityGraph& g, const WcIndexOptions& options) {
  switch (options.ordering) {
    case WcIndexOptions::Ordering::kDegree:
      return DegreeOrder(g);
    case WcIndexOptions::Ordering::kTreeDecomposition:
      return TreeDecompositionOrder(g);
    case WcIndexOptions::Ordering::kHybrid: {
      HybridOptions h;
      h.degree_threshold = options.hybrid_degree_threshold != 0
                               ? options.hybrid_degree_threshold
                               : AutoDegreeThreshold(g);
      return HybridOrder(g, h);
    }
    case WcIndexOptions::Ordering::kRandom:
      return RandomOrder(g.NumVertices(), options.seed);
    case WcIndexOptions::Ordering::kIdentity:
      return IdentityOrder(g.NumVertices());
  }
  return DegreeOrder(g);
}

/// One-shot builder implementing Algorithm 3, sequentially or as the
/// rank-batched parallel pipeline.
///
/// Sequential mode (num_threads == 1) is the paper's loop: one constrained
/// BFS per root in rank order, each pruning against the live partial index.
///
/// Parallel mode partitions roots (in rank order) into batches. Within a
/// batch, worker threads run the same constrained BFS, but prune only
/// against the immutable snapshot of the index from prior batches and
/// record surviving pops as CANDIDATE entries instead of appending. Missing
/// the prunes of same-batch lower-ranked roots makes the candidate stream a
/// superset of the sequential entry stream with identical (dist, quality)
/// values: with fewer prunes the per-level max-quality frontier dominates
/// the sequential one, and any pop it adds or upgrades is reachable through
/// an already-indexed higher-ranked hub, hence covered. After a barrier, a
/// sequential merge replays each root's candidates in rank order through
/// the exact sequential cover check against the live index, which discards
/// precisely the extras — the result is bit-identical to the sequential
/// build (Theorem 1's minimal index is canonical for a fixed order), for
/// any thread count and batch size (tested).
class WcIndexBuilder {
 public:
  WcIndexBuilder(const QualityGraph& g, VertexOrder order,
                 const WcIndexOptions& options)
      : g_(g),
        order_(std::move(order)),
        options_(options),
        labels_(g.NumVertices()) {
    if (options.record_parents) parents_.resize(g.NumVertices());
  }

  WcIndex Run() {
    Timer timer;
    const size_t n = g_.NumVertices();
    size_t threads = std::min(ResolveThreads(options_.num_threads),
                              n == 0 ? size_t{1} : n);
    if (threads <= 1) {
      BuildWorkspace ws(n);
      for (Rank k = 0; k < n; ++k) {
        BfsFromRoot(k, ws, /*candidates=*/nullptr);
      }
      AccumulateStats(ws);
    } else {
      RunParallel(threads);
    }
    stats_.build_seconds = timer.Seconds();
    WcIndex index(std::move(labels_), std::move(order_), stats_);
    index.parents_ = std::move(parents_);
    return index;
  }

 private:
  // Frontier entry: the paper's queue tuple (u, d, w) with d implicit in
  // the level structure, plus the BFS predecessor for §V quad labels.
  struct Frontier {
    Vertex vertex;
    Quality quality;
    Vertex parent;
  };

  // A surviving pop from a snapshot-pruned BFS, pending the merge-phase
  // re-prune. dist is implicit in sequential mode but must be carried here.
  struct Candidate {
    Vertex vertex;
    Distance dist;
    Quality quality;
    Vertex parent;
  };

  // Per-thread scratch (§IV.C Efficient Initialization): epoch-reset
  // between roots, allocated once per worker for the whole build.
  struct BuildWorkspace {
    explicit BuildWorkspace(size_t n)
        : max_quality(n, kNegInfQuality),
          in_next(n, false),
          memo_quality(n, kNegInfQuality),
          hub_group_begin(n, 0),
          hub_group_end(n, 0),
          pred(n, kNullVertex) {}

    EpochArray<Quality> max_quality;  // the paper's R vector
    EpochArray<bool> in_next;
    EpochArray<Quality> memo_quality;
    EpochArray<uint32_t> hub_group_begin;  // the per-root hub table T
    EpochArray<uint32_t> hub_group_end;
    EpochArray<Vertex> pred;
    std::vector<Frontier> cur;
    std::vector<Vertex> nxt;
    WcIndexBuildStats stats;  // thread-local counters, summed at the end
  };

  void RunParallel(size_t threads) {
    const size_t n = g_.NumVertices();
    ThreadPool pool(threads);
    std::vector<std::unique_ptr<BuildWorkspace>> workspaces;
    workspaces.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workspaces.push_back(std::make_unique<BuildWorkspace>(n));
    }
    std::vector<std::vector<Candidate>> candidates;
    // Auto batch schedule: start at the thread count and double up to a
    // cap. Early (high-rank) roots contribute the labels that prune the
    // rest of the build, so staling them briefly is cheap only while the
    // batches are small.
    size_t auto_batch = threads;
    const size_t auto_cap = std::max<size_t>(64, 16 * threads);
    for (Rank k0 = 0; k0 < n;) {
      size_t batch = options_.batch_size != 0 ? options_.batch_size
                                              : auto_batch;
      Rank k1 = static_cast<Rank>(std::min<size_t>(n, k0 + batch));
      candidates.assign(k1 - k0, {});
      for (Rank k = k0; k < k1; ++k) {
        pool.Submit([this, k, k0, &workspaces, &candidates](size_t worker) {
          BfsFromRoot(k, *workspaces[worker], &candidates[k - k0]);
        });
      }
      pool.Wait();
      // Barrier passed: labels_ is mutable again, workers are idle, so the
      // first workspace's hub table is free for the merge.
      for (Rank k = k0; k < k1; ++k) {
        MergeRoot(k, candidates[k - k0], *workspaces[0]);
      }
      k0 = k1;
      auto_batch = std::min(auto_batch * 2, auto_cap);
    }
    for (const auto& ws : workspaces) AccumulateStats(*ws);
  }

  // Constrained BFS from the k-th vertex in the order (Algorithm 3 lines
  // 3-17). With `candidates == nullptr` this is the sequential algorithm:
  // cover checks read the live index and survivors are appended directly.
  // Otherwise survivors are recorded for the merge phase and cover checks
  // see only the pre-batch snapshot (labels_ is frozen during the batch).
  void BfsFromRoot(Rank k, BuildWorkspace& ws,
                   std::vector<Candidate>* candidates) {
    const Vertex root = order_.VertexAt(k);

    // Per-root scratch reset (O(1) via epochs): R vector (line 4), the
    // satisfied-query memo, and the root's hub lookup table.
    ws.max_quality.Clear();
    ws.memo_quality.Clear();
    ws.pred.Clear();
    if (options_.query_efficient) BuildHubTable(root, ws);

    ws.max_quality.Set(root, kInfQuality);
    ws.cur.clear();
    ws.nxt.clear();
    ws.cur.push_back(Frontier{root, kInfQuality, kNullVertex});

    Distance d = 0;
    while (!ws.cur.empty()) {
      ws.in_next.Clear();
      ws.nxt.clear();
      for (const Frontier& f : ws.cur) {
        ++ws.stats.pops;
        if (!ProcessPop(k, root, f.vertex, d, f.quality, f.parent, ws,
                        candidates)) {
          continue;
        }
        Relax(k, f.vertex, f.quality, ws);
      }
      // Line 17: only after the whole level is processed are the updated
      // vertices pushed, each once, with the maximal quality seen (the
      // quality-priority order at no extra cost).
      ws.cur.clear();
      for (Vertex v : ws.nxt) {
        ws.cur.push_back(Frontier{v, ws.max_quality.Get(v), ws.pred.Get(v)});
      }
      ++d;
    }
  }

  // Lines 11-12: dominance-prune against the partial index, else keep the
  // new entry. Returns true if the entry was kept (and should expand).
  bool ProcessPop(Rank k, Vertex root, Vertex u, Distance d, Quality w,
                  Vertex parent, BuildWorkspace& ws,
                  std::vector<Candidate>* candidates) {
    if (options_.further_pruning && ws.memo_quality.Get(u) >= w) {
      ++ws.stats.pruned_by_memo;
      return false;
    }
    bool covered = options_.query_efficient
                       ? CoveredFast(root, u, d, w, ws)
                       : CoveredBasic(root, u, d, w);
    if (covered) {
      ++ws.stats.pruned_by_query;
      if (options_.further_pruning) ws.memo_quality.Set(u, w);
      return false;
    }
    if (candidates != nullptr) {
      candidates->push_back(Candidate{u, d, w, parent});
    } else {
      AppendEntry(k, u, d, w, parent);
    }
    return true;
  }

  // Merge phase: replay root k's candidates — in the BFS pop order the
  // sequential build would have used — through the sequential cover check
  // against the live index, appending survivors. The memo is skipped: per
  // vertex, candidate qualities strictly ascend within one root, so a memo
  // hit (a previously satisfied query at >= quality) is impossible here.
  void MergeRoot(Rank k, const std::vector<Candidate>& candidates,
                 BuildWorkspace& ws) {
    const Vertex root = order_.VertexAt(k);
    if (options_.query_efficient) BuildHubTable(root, ws);
    for (const Candidate& c : candidates) {
      bool covered =
          options_.query_efficient
              ? CoveredFast(root, c.vertex, c.dist, c.quality, ws)
              : CoveredBasic(root, c.vertex, c.dist, c.quality);
      if (covered) {
        ++stats_.pruned_by_query;
        continue;
      }
      AppendEntry(k, c.vertex, c.dist, c.quality, c.parent);
    }
  }

  void AppendEntry(Rank k, Vertex u, Distance d, Quality w, Vertex parent) {
    labels_.Append(u, LabelEntry{k, d, w});
    if (!parents_.empty()) parents_[u].push_back(parent);
    ++stats_.entries_added;
  }

  // Lines 13-16: explore higher-ranked neighbors, keeping per vertex only
  // the maximum-quality candidate for the next level (the R test).
  void Relax(Rank k, Vertex u, Quality w, BuildWorkspace& ws) {
    for (const Arc& a : g_.Neighbors(u)) {
      if (order_.RankOf(a.to) <= k) continue;
      ++ws.stats.relaxations;
      Quality next_quality = std::min(a.quality, w);
      if (next_quality <= ws.max_quality.Get(a.to)) continue;
      ws.max_quality.Set(a.to, next_quality);
      ws.pred.Set(a.to, u);
      if (!ws.in_next.Get(a.to)) {
        ws.in_next.Set(a.to, true);
        ws.nxt.push_back(a.to);
      }
    }
  }

  // Per-root hub table T (§IV.C "Querying"): hub rank -> entry range in
  // L(root). Built once per root in O(|L(root)|).
  void BuildHubTable(Vertex root, BuildWorkspace& ws) {
    ws.hub_group_begin.Clear();
    ws.hub_group_end.Clear();
    auto lr = labels_.For(root);
    size_t i = 0;
    while (i < lr.size()) {
      size_t ie = i + 1;
      while (ie < lr.size() && lr[ie].hub == lr[i].hub) ++ie;
      ws.hub_group_begin.Set(lr[i].hub, static_cast<uint32_t>(i));
      ws.hub_group_end.Set(lr[i].hub, static_cast<uint32_t>(ie));
      i = ie;
    }
  }

  // Query-efficient cover check: one pass over L(u), O(1) root-side group
  // lookup through T, binary searches inside groups (Theorem 3).
  bool CoveredFast(Vertex root, Vertex u, Distance d, Quality w,
                   const BuildWorkspace& ws) {
    auto lr = labels_.For(root);
    auto lu = labels_.For(u);
    size_t i = 0;
    while (i < lu.size()) {
      size_t ie = i + 1;
      Rank hub = lu[i].hub;
      while (ie < lu.size() && lu[ie].hub == hub) ++ie;
      if (ws.hub_group_begin.Contains(hub)) {
        size_t rb = ws.hub_group_begin.Get(hub);
        size_t re = ws.hub_group_end.Get(hub);
        size_t ri = FirstWithQuality(lr, rb, re, w);
        if (ri != re) {
          size_t ui = FirstWithQuality(lu, i, ie, w);
          if (ui != ie && lr[ri].dist + lu[ui].dist <= d) return true;
        }
      }
      i = ie;
    }
    return false;
  }

  // Basic cover check (plain WC-INDEX): re-resolve hub groups with binary
  // search over L(root) for every query — Algorithm 4 shape.
  bool CoveredBasic(Vertex root, Vertex u, Distance d, Quality w) {
    return QueryLabelsHubGrouped(labels_.For(root), labels_.For(u), w) <= d;
  }

  void AccumulateStats(const BuildWorkspace& ws) {
    stats_.pops += ws.stats.pops;
    stats_.pruned_by_query += ws.stats.pruned_by_query;
    stats_.pruned_by_memo += ws.stats.pruned_by_memo;
    stats_.relaxations += ws.stats.relaxations;
  }

  const QualityGraph& g_;
  VertexOrder order_;
  WcIndexOptions options_;
  LabelSet labels_;
  WcIndexBuildStats stats_;
  std::vector<std::vector<Vertex>> parents_;
};

WcIndex WcIndex::Build(const QualityGraph& g, const WcIndexOptions& options) {
  return BuildWithOrder(g, MakeOrder(g, options), options);
}

WcIndex WcIndex::BuildWithOrder(const QualityGraph& g, VertexOrder order,
                                const WcIndexOptions& options) {
  assert(order.size() == g.NumVertices());
  WcIndexBuilder builder(g, std::move(order), options);
  return builder.Run();
}

void WcIndex::Finalize() {
  if (finalized_) return;
  flat_ = FlatLabelSet::FromLabelSet(labels_);
  finalized_ = true;
}

FlatLabelView WcIndex::DecodedView(Vertex v) const {
  // Two rotating scratch slots per thread: a kernel holding the views of
  // both endpoints never sees its first decode clobbered by the second.
  thread_local DecodedLabel scratch[2];
  thread_local unsigned next = 0;
  DecodedLabel* slot = &scratch[next++ & 1];
  if (!compressed_.DecodeVertex(v, slot).ok()) slot->Clear();
  return slot->View();
}

Distance WcIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s >= NumVertices() || t >= NumVertices()) return kInfDistance;
  if (s == t) return 0;
  if (compressed_backend_) return QueryCompressedMerge(compressed_, s, t, w);
  if (finalized_) return QueryFlatMerge(flat_.View(s), flat_.View(t), w);
  return QueryLabelsMerge(labels_.For(s), labels_.For(t), w);
}

Distance WcIndex::Query(Vertex s, Vertex t, Quality w, QueryImpl impl) const {
  if (s >= NumVertices() || t >= NumVertices()) return kInfDistance;
  if (s == t) return 0;
  if (compressed_backend_) {
    // kMerge streams the varint blobs directly; the other impls (ablation
    // paths) run the flat kernels over per-vertex decodes — bit-identical
    // either way.
    if (impl == QueryImpl::kMerge) {
      return QueryCompressedMerge(compressed_, s, t, w);
    }
    return QueryFlat(DecodedView(s), DecodedView(t), w, impl);
  }
  if (finalized_) return QueryFlat(flat_.View(s), flat_.View(t), w, impl);
  return QueryLabels(labels_.For(s), labels_.For(t), w, impl);
}

IntervalQueryResult WcIndex::QueryWithInterval(Vertex s, Vertex t,
                                               Quality w) const {
  if (s >= NumVertices() || t >= NumVertices()) return IntervalQueryResult{};
  if (s == t) {
    IntervalQueryResult r;
    r.dist = 0;
    return r;  // 0 under every constraint
  }
  if (compressed_backend_) {
    return QueryFlatMergeWithInterval(DecodedView(s), DecodedView(t), w);
  }
  if (finalized_) {
    return QueryFlatMergeWithInterval(flat_.View(s), flat_.View(t), w);
  }
  return QueryLabelsMergeWithInterval(labels_.For(s), labels_.For(t), w);
}

HubQueryResult WcIndex::QueryWithHub(Vertex s, Vertex t, Quality w) const {
  if (s >= NumVertices() || t >= NumVertices()) return HubQueryResult{};
  if (s == t) {
    HubQueryResult r;
    r.dist = 0;
    r.via_hub = order_.RankOf(s);
    r.dist_from_s = 0;
    r.dist_to_t = 0;
    return r;
  }
  if (compressed_backend_) {
    return QueryFlatMergeWithHub(DecodedView(s), DecodedView(t), w);
  }
  if (finalized_) return QueryFlatMergeWithHub(flat_.View(s), flat_.View(t), w);
  return QueryLabelsMergeWithHub(labels_.For(s), labels_.For(t), w);
}

uint64_t WcIndex::ContentFingerprint() const {
  if (compressed_backend_) return compressed_.ContentFingerprint();
  return IndexContentFingerprint(flat_);
}

namespace {
constexpr uint64_t kIndexMagic = 0x57435344'494e4458ULL;  // "WCSDINDX"

// The .wcx format is defined in fixed-width little-endian fields: u64
// magic, u64 vertex count, n * u32 order, then per vertex a u64 entry
// count followed by that many 12-byte LabelEntry records.
static_assert(sizeof(Vertex) == 4);
static_assert(sizeof(LabelEntry) == 12);
}  // namespace

Status WcIndex::Save(const std::string& path) const {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&kIndexMagic), sizeof(kIndexMagic));
  uint64_t n = NumVertices();
  // An mmap-loaded index has no append-oriented labels; serialize from
  // whichever backend queries route through (EntriesFor decodes the
  // compressed backend per vertex) instead of silently writing an empty
  // index.
  const bool from_serving = labels_.NumVertices() != n;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(order_.by_rank().data()),
            static_cast<std::streamsize>(n * sizeof(Vertex)));
  for (uint64_t v = 0; v < n; ++v) {
    auto lv = from_serving ? EntriesFor(static_cast<Vertex>(v))
                           : labels_.For(static_cast<Vertex>(v));
    uint64_t count = lv.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(lv.data()),
              static_cast<std::streamsize>(count * sizeof(LabelEntry)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<WcIndex> WcIndex::Load(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckSerializationByteOrder());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  // Every count is validated against the bytes actually left in the file
  // before any allocation, so a corrupted count field yields Corruption
  // rather than a std::bad_alloc crash.
  uint64_t bytes_left = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint64_t magic = 0, n = 0;
  if (bytes_left < sizeof(magic) + sizeof(n)) {
    return Status::Corruption("truncated header in " + path);
  }
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kIndexMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return Status::Corruption("truncated header in " + path);
  bytes_left -= sizeof(magic) + sizeof(n);
  if (n > bytes_left / sizeof(Vertex)) {
    return Status::Corruption("truncated order in " + path);
  }
  std::vector<Vertex> by_rank(n);
  in.read(reinterpret_cast<char*>(by_rank.data()),
          static_cast<std::streamsize>(n * sizeof(Vertex)));
  if (!in) return Status::Corruption("truncated order in " + path);
  bytes_left -= n * sizeof(Vertex);

  WcIndex index;
  index.order_ = VertexOrder(std::move(by_rank));
  if (!index.order_.IsValid()) {
    return Status::Corruption("order is not a permutation in " + path);
  }
  index.labels_ = LabelSet(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t count = 0;
    if (bytes_left < sizeof(count)) {
      return Status::Corruption("truncated label count in " + path);
    }
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!in) return Status::Corruption("truncated label count in " + path);
    bytes_left -= sizeof(count);
    if (count > bytes_left / sizeof(LabelEntry)) {
      return Status::Corruption("truncated label entries in " + path);
    }
    auto* lv = index.labels_.Mutable(static_cast<Vertex>(v));
    lv->resize(count);
    in.read(reinterpret_cast<char*>(lv->data()),
            static_cast<std::streamsize>(count * sizeof(LabelEntry)));
    if (!in) return Status::Corruption("truncated label entries in " + path);
    bytes_left -= count * sizeof(LabelEntry);
  }
  if (!index.labels_.IsSorted()) {
    return Status::Corruption("unsorted labels in " + path);
  }
  return index;
}

Status WcIndex::SaveSnapshot(const std::string& path,
                             const SnapshotWriteOptions& write_options) const {
  if (!finalized_) {
    return Status::InvalidArgument(
        "SaveSnapshot requires a finalized index (call Finalize first)");
  }
  if (compressed_backend_) {
    // Re-materialize the flat arrays, the snapshot writer's input form.
    // This is the migration path both ways: --compress re-encodes (fresh
    // dictionary), without it the snapshot comes out uncompressed.
    Result<FlatLabelSet> flat = compressed_.Decompress();
    if (!flat.ok()) return flat.status();
    return WriteSnapshot(path, flat.value(), &order_, /*parents=*/{},
                         write_options);
  }
  if (!parents_.empty()) {
    // Flatten the per-vertex parent vectors in vertex order — the same
    // order Finalize packs entries — so parents align index-for-index with
    // the flat entry array the snapshot carries.
    std::vector<Vertex> flat_parents;
    flat_parents.reserve(flat_.TotalEntries());
    for (const std::vector<Vertex>& pv : parents_) {
      flat_parents.insert(flat_parents.end(), pv.begin(), pv.end());
    }
    if (flat_parents.size() != flat_.raw_entries().size()) {
      return Status::InvalidArgument(
          "parent quads out of sync with the flat labels; refusing to "
          "snapshot misaligned parents");
    }
    return WriteSnapshot(path, flat_, &order_, flat_parents, write_options);
  }
  if (!flat_parents_.empty()) {
    return WriteSnapshot(path, flat_, &order_, flat_parents_, write_options);
  }
  return WriteSnapshot(path, flat_, &order_, /*parents=*/{}, write_options);
}

Result<WcIndex> WcIndex::LoadMmap(const std::string& path,
                                  const SnapshotLoadOptions& options) {
  Result<MappedSnapshot> snapshot = LoadSnapshotMmap(path, options);
  if (!snapshot.ok()) return snapshot.status();
  MappedSnapshot& mapped = snapshot.value();
  if (!mapped.info.IsFullRange() || !mapped.info.has_order) {
    return Status::InvalidArgument(
        "not a full-range snapshot with a vertex order: " + path);
  }
  WcIndex index;
  index.order_ = VertexOrder(std::move(mapped.order_by_rank));
  if (!index.order_.IsValid()) {
    return Status::Corruption("order is not a permutation in " + path);
  }
  if (mapped.info.compressed) {
    index.compressed_ = std::move(mapped.compressed);
    index.compressed_backend_ = true;
  } else {
    index.flat_ = std::move(mapped.labels);
    index.flat_parents_ = mapped.parents;  // kept alive by flat_'s mapping
  }
  index.finalized_ = true;
  return index;
}

}  // namespace wcsd
