#include "core/dynamic_wc_index.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

#include "graph/builder.h"
#include "labeling/delta.h"
#include "labeling/query.h"

namespace wcsd {

namespace {
constexpr Quality kNegInfQuality = -std::numeric_limits<Quality>::infinity();
}  // namespace

DynamicWcIndex::DynamicWcIndex(const QualityGraph& g,
                               const WcIndexOptions& options)
    : options_(options), adj_(g.NumVertices()) {
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  WcIndex built = WcIndex::Build(g, options_);
  order_ = built.order();
  labels_ = built.labels();
}

DynamicWcIndex::DynamicWcIndex(const QualityGraph& g, VertexOrder order,
                               LabelSet labels, const WcIndexOptions& options)
    : options_(options),
      order_(std::move(order)),
      labels_(std::move(labels)),
      adj_(g.NumVertices()) {
  assert(labels_.NumVertices() == g.NumVertices());
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
}

bool DynamicWcIndex::Apply(const DeltaLog& log) {
  if (!log.HasDelete()) {
    for (const DeltaBatch& batch : log.batches) {
      std::vector<EdgeUpdate> staged;
      staged.reserve(batch.records.size());
      for (const DeltaRecord& record : batch.records) {
        // kUpgrade rides InsertEdge's parallel-edge max-quality semantics.
        staged.push_back(EdgeUpdate{record.u, record.v, record.quality});
      }
      InsertEdges(staged);
    }
    return true;
  }
  // A delete invalidates labels in ways incremental repair cannot fix:
  // stage every op on the adjacency in log order, rebuild once.
  for (const DeltaBatch& batch : log.batches) {
    for (const DeltaRecord& record : batch.records) {
      switch (static_cast<DeltaOp>(record.op)) {
        case DeltaOp::kInsert:
        case DeltaOp::kUpgrade: {
          if (record.u == record.v) break;
          bool updated = false;
          for (Arc& a : adj_[record.u]) {
            if (a.to == record.v) {
              if (record.quality > a.quality) {
                a.quality = record.quality;
                for (Arc& b : adj_[record.v]) {
                  if (b.to == record.u) b.quality = record.quality;
                }
              }
              updated = true;
              break;
            }
          }
          if (!updated) {
            adj_[record.u].push_back(Arc{record.v, record.quality});
            adj_[record.v].push_back(Arc{record.u, record.quality});
          }
          break;
        }
        case DeltaOp::kDelete: {
          auto erase_arc = [this](Vertex from, Vertex to) {
            auto& arcs = adj_[from];
            auto it = std::find_if(arcs.begin(), arcs.end(),
                                   [to](const Arc& a) { return a.to == to; });
            if (it != arcs.end()) arcs.erase(it);
          };
          erase_arc(record.u, record.v);
          erase_arc(record.v, record.u);
          break;
        }
      }
    }
  }
  Rebuild();
  return false;
}

WcIndex DynamicWcIndex::ReleaseIndex() {
  return WcIndex(std::move(labels_), order_, WcIndexBuildStats{});
}

QualityGraph DynamicWcIndex::Snapshot() const {
  GraphBuilder builder(adj_.size());
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (const Arc& a : adj_[u]) {
      if (u < a.to) builder.AddEdge(u, a.to, a.quality);
    }
  }
  return builder.Build();
}

void DynamicWcIndex::Rebuild() {
  WcIndex built = WcIndex::Build(Snapshot(), options_);
  order_ = built.order();
  labels_ = built.labels();
}

Distance DynamicWcIndex::Query(Vertex s, Vertex t, Quality w) const {
  if (s == t) return 0;
  return QueryLabelsMerge(labels_.For(s), labels_.For(t), w);
}

void DynamicWcIndex::InsertEdge(Vertex u, Vertex v, Quality q) {
  assert(u < adj_.size() && v < adj_.size());
  if (u == v) return;
  // Parallel-edge semantics match GraphBuilder: keep the max quality.
  for (Arc& a : adj_[u]) {
    if (a.to == v) {
      if (q <= a.quality) return;  // Dominated parallel edge: no-op.
      a.quality = q;
      for (Arc& b : adj_[v]) {
        if (b.to == u) b.quality = q;
      }
      ResumeAcross(u, v, q);
      ResumeAcross(v, u, q);
      return;
    }
  }
  adj_[u].push_back(Arc{v, q});
  adj_[v].push_back(Arc{u, q});
  ResumeAcross(u, v, q);
  ResumeAcross(v, u, q);
}

void DynamicWcIndex::InsertEdges(const std::vector<EdgeUpdate>& edges) {
  size_t current_edges = 0;
  for (const auto& arcs : adj_) current_edges += arcs.size();
  current_edges /= 2;
  if (edges.size() * 8 > current_edges + 8) {
    // Bulk path: stage everything, rebuild once.
    for (const EdgeUpdate& e : edges) {
      if (e.u == e.v) continue;
      bool updated = false;
      for (Arc& a : adj_[e.u]) {
        if (a.to == e.v) {
          if (e.quality > a.quality) {
            a.quality = e.quality;
            for (Arc& b : adj_[e.v]) {
              if (b.to == e.u) b.quality = e.quality;
            }
          }
          updated = true;
          break;
        }
      }
      if (!updated) {
        adj_[e.u].push_back(Arc{e.v, e.quality});
        adj_[e.v].push_back(Arc{e.u, e.quality});
      }
    }
    Rebuild();
    return;
  }
  for (const EdgeUpdate& e : edges) InsertEdge(e.u, e.v, e.quality);
}

void DynamicWcIndex::DeleteEdge(Vertex u, Vertex v) {
  assert(u < adj_.size() && v < adj_.size());
  auto erase_arc = [this](Vertex from, Vertex to) {
    auto& arcs = adj_[from];
    auto it = std::find_if(arcs.begin(), arcs.end(),
                           [to](const Arc& a) { return a.to == to; });
    if (it == arcs.end()) return false;
    arcs.erase(it);
    return true;
  };
  bool existed = erase_arc(u, v);
  erase_arc(v, u);
  if (existed) Rebuild();
}

void DynamicWcIndex::ResumeAcross(Vertex from, Vertex to, Quality q) {
  // Snapshot L(from): ResumeBfs mutates labels, and iterating a mutating
  // vector would be undefined.
  std::vector<LabelEntry> entries(labels_.For(from).begin(),
                                  labels_.For(from).end());
  for (const LabelEntry& e : entries) {
    ResumeBfs(e.hub, to, e.dist + 1, std::min(e.quality, q));
  }
}

void DynamicWcIndex::ResumeBfs(Rank h, Vertex seed, Distance d, Quality w) {
  // Vertices with rank <= h are never labeled by hub h (they are covered by
  // higher-priority hubs), matching Algorithm 3 line 13.
  if (order_.RankOf(seed) <= h) return;
  const Vertex hub_vertex = order_.VertexAt(h);

  struct Candidate {
    Distance dist;
    Quality quality;
    Vertex vertex;
    bool operator>(const Candidate& other) const {
      if (dist != other.dist) return dist > other.dist;
      return quality < other.quality;
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
      queue;
  // Local R map: max quality already popped per vertex during this resume.
  // The resume touches few vertices, so a sparse map beats an O(n) array.
  std::vector<std::pair<Vertex, Quality>> popped;
  auto max_popped = [&popped](Vertex v) {
    Quality best = kNegInfQuality;
    for (const auto& [pv, pq] : popped) {
      if (pv == v) best = std::max(best, pq);
    }
    return best;
  };

  queue.push(Candidate{d, w, seed});
  while (!queue.empty()) {
    Candidate c = queue.top();
    queue.pop();
    if (c.quality <= max_popped(c.vertex)) continue;  // Dominated locally.
    popped.emplace_back(c.vertex, c.quality);
    if (QueryLabelsMerge(labels_.For(hub_vertex), labels_.For(c.vertex),
                         c.quality) <= c.dist) {
      continue;  // Covered by the current index.
    }
    InsertEntry(c.vertex, LabelEntry{h, c.dist, c.quality});
    for (const Arc& a : adj_[c.vertex]) {
      if (order_.RankOf(a.to) <= h) continue;
      Quality nq = std::min(a.quality, c.quality);
      if (nq <= max_popped(a.to)) continue;
      queue.push(Candidate{c.dist + 1, nq, a.to});
    }
  }
}

void DynamicWcIndex::InsertEntry(Vertex u, LabelEntry entry) {
  auto* lv = labels_.Mutable(u);
  // Locate the insertion point by (hub, dist).
  auto it = std::lower_bound(lv->begin(), lv->end(), entry,
                             [](const LabelEntry& a, const LabelEntry& b) {
                               if (a.hub != b.hub) return a.hub < b.hub;
                               return a.dist < b.dist;
                             });
  // Drop following same-hub entries the new one dominates (dist >= new,
  // quality <= new). They form a prefix of the suffix by Theorem 3.
  auto erase_end = it;
  while (erase_end != lv->end() && erase_end->hub == entry.hub &&
         erase_end->quality <= entry.quality) {
    ++erase_end;
  }
  it = lv->erase(it, erase_end);
  lv->insert(it, entry);
}

}  // namespace wcsd
