// Batch query evaluation and constraint-aware nearest-neighbor helpers.
//
// The paper's applications issue queries in bulk (search ranking evaluates
// distances to many candidates; QoS admission checks whole flow sets).
// These helpers amortize that pattern over the index:
//   * BatchQuery      — evaluate a workload, optionally across threads
//                       (queries are independent; labels are read-only);
//   * TopKClosest     — rank a candidate set by w-constrained distance
//                       (the §I social-search scenario);
//   * QualityProfile  — for one pair, the full dominance frontier
//                       (distance at every distinct threshold), extracted
//                       from the labels without touching the graph.

#ifndef WCSD_CORE_BATCH_H_
#define WCSD_CORE_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/wc_index.h"
#include "util/types.h"

namespace wcsd {

/// One batch query input.
struct BatchQueryInput {
  Vertex s;
  Vertex t;
  Quality w;
};

/// Evaluates all queries against `index`. With threads > 1, the workload is
/// partitioned into contiguous chunks evaluated concurrently; results are
/// positionally aligned with the inputs either way.
std::vector<Distance> BatchQuery(const WcIndex& index,
                                 const std::vector<BatchQueryInput>& queries,
                                 size_t threads = 1);

/// A ranked candidate.
struct RankedCandidate {
  Vertex vertex;
  Distance dist;
};

/// Returns up to k candidates closest to `source` under constraint `w`,
/// ascending by distance (ties by vertex id); unreachable candidates are
/// omitted.
std::vector<RankedCandidate> TopKClosest(const WcIndex& index, Vertex source,
                                         const std::vector<Vertex>& candidates,
                                         Quality w, size_t k);

/// One point of a pair's quality/distance trade-off.
struct ProfilePoint {
  Quality quality;  // constraint threshold
  Distance dist;    // w-constrained distance at that threshold
};

/// The full trade-off curve for (s, t): for each threshold in `thresholds`
/// (ascending), the constrained distance. Points with infinite distance are
/// included (callers often want to see where the curve breaks).
std::vector<ProfilePoint> QualityProfile(const WcIndex& index, Vertex s,
                                         Vertex t,
                                         const std::vector<Quality>& thresholds);

}  // namespace wcsd

#endif  // WCSD_CORE_BATCH_H_
