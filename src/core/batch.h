// Batch query evaluation and constraint-aware nearest-neighbor helpers.
//
// The paper's applications issue queries in bulk (search ranking evaluates
// distances to many candidates; QoS admission checks whole flow sets).
// These helpers amortize that pattern over the index:
//   * BatchQuery      — evaluate a workload, optionally across threads
//                       (queries are independent; labels are read-only);
//   * TopKClosest     — rank a candidate set by w-constrained distance
//                       (the §I social-search scenario);
//   * QualityProfile  — for one pair, the full dominance frontier
//                       (distance at every distinct threshold), extracted
//                       from the labels without touching the graph.

#ifndef WCSD_CORE_BATCH_H_
#define WCSD_CORE_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/wc_index.h"
#include "labeling/query.h"
#include "util/types.h"

namespace wcsd {

/// One batch query input.
struct BatchQueryInput {
  Vertex s;
  Vertex t;
  Quality w;
};

/// Evaluates all queries against `index`. With threads > 1, the workload is
/// partitioned into contiguous chunks evaluated concurrently; results are
/// positionally aligned with the inputs either way.
std::vector<Distance> BatchQuery(const WcIndex& index,
                                 const std::vector<BatchQueryInput>& queries,
                                 size_t threads = 1);

/// A ranked candidate.
struct RankedCandidate {
  Vertex vertex;
  Distance dist;
};

/// Returns up to k candidates closest to `source` under constraint `w`,
/// ascending by distance (ties by vertex id); unreachable candidates are
/// omitted. One-to-many evaluation (Zhu-style single-source): the source's
/// labels are scanned ONCE into a rank-indexed distance table, then each
/// candidate costs one pass over its own labels — instead of a full
/// two-sided merge per candidate. Bit-identical to ranking per-candidate
/// Query calls (fuzz-asserted).
std::vector<RankedCandidate> TopKClosest(const WcIndex& index, Vertex source,
                                         const std::vector<Vertex>& candidates,
                                         Quality w, size_t k);

/// One point of a pair's quality/distance trade-off.
struct ProfilePoint {
  Quality quality;  // constraint threshold
  Distance dist;    // w-constrained distance at that threshold
};

/// The full trade-off curve for (s, t): for each threshold in `thresholds`
/// (any order; evaluated ascending internally), the constrained distance,
/// positionally aligned with the input. Points with infinite distance are
/// included (callers often want to see where the curve breaks).
///
/// d(s, t, w) is a step function of w, so the curve is computed from the
/// interval kernel (QueryWithInterval): each label merge certifies a whole
/// maximal constraint interval, and every threshold inside it is answered
/// for free. The merge count equals the number of DISTINCT intervals the
/// thresholds land in — bounded by the pair's breakpoint count, not the
/// threshold count — and is reported through `label_merges` when non-null.
std::vector<ProfilePoint> QualityProfile(
    const WcIndex& index, Vertex s, Vertex t,
    const std::vector<Quality>& thresholds, size_t* label_merges = nullptr);

// ------------------------------------------------------------------
// Implementation cores shared with the serving engines (sharded serving
// stitches per-vertex label slices from different shards, so the cores are
// parameterized over an entries accessor / interval kernel).

/// One-to-many top-k over any label storage: `entries_of(v)` returns the
/// label entries of vertex v (v < n). Semantics match TopKClosest.
template <typename EntriesOf>
std::vector<RankedCandidate> TopKClosestOverLabels(
    size_t n, Vertex source, std::span<const Vertex> candidates, Quality w,
    size_t k, EntriesOf&& entries_of) {
  std::vector<RankedCandidate> ranked;
  if (source >= n) return ranked;  // every candidate is unreachable
  ranked.reserve(candidates.size());
  // The hoisted source-side scan: minimal w-feasible distance per hub.
  // (Theorem 3: within a hub group the first quality-feasible entry has
  // the minimal distance, so a running min over all feasible entries
  // resolves each group to exactly that entry.)
  std::vector<Distance> source_dist(n, kInfDistance);
  for (const LabelEntry& e : entries_of(static_cast<Vertex>(source))) {
    if (e.quality < w) continue;
    if (e.dist < source_dist[e.hub]) source_dist[e.hub] = e.dist;
  }
  for (Vertex c : candidates) {
    Distance d = kInfDistance;
    if (c == source) {
      d = 0;
    } else if (c < n) {
      for (const LabelEntry& e : entries_of(c)) {
        if (e.quality < w) continue;
        const Distance ds = source_dist[e.hub];
        if (ds == kInfDistance) continue;
        if (ds + e.dist < d) d = ds + e.dist;
      }
    }
    if (d != kInfDistance) ranked.push_back({c, d});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.vertex < b.vertex;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

/// Threshold sweep over any interval kernel: `query_interval(w)` returns
/// the IntervalQueryResult for the pair at threshold w. Issues one kernel
/// call per distinct certified interval; semantics match QualityProfile.
template <typename IntervalFn>
std::vector<ProfilePoint> QualityProfileOverIntervals(
    std::span<const Quality> thresholds, IntervalFn&& query_interval,
    size_t* label_merges = nullptr) {
  std::vector<ProfilePoint> profile(thresholds.size());
  // Evaluate ascending so each certified interval is reused for every
  // threshold it contains; results land at their input positions.
  std::vector<size_t> by_threshold(thresholds.size());
  for (size_t i = 0; i < by_threshold.size(); ++i) by_threshold[i] = i;
  std::sort(by_threshold.begin(), by_threshold.end(),
            [&](size_t a, size_t b) { return thresholds[a] < thresholds[b]; });
  size_t merges = 0;
  IntervalQueryResult interval;
  bool have_interval = false;
  for (size_t i : by_threshold) {
    const Quality w = thresholds[i];
    if (!have_interval || !interval.Contains(w)) {
      interval = query_interval(w);
      have_interval = true;
      ++merges;
    }
    profile[i] = {w, interval.dist};
  }
  if (label_merges != nullptr) *label_merges = merges;
  return profile;
}

}  // namespace wcsd

#endif  // WCSD_CORE_BATCH_H_
