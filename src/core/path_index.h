// Quality-constrained shortest PATH queries (paper §V).
//
// The index stores quads (u, d_u, w_u, p_uv): each label entry keeps the
// BFS predecessor recorded during construction (WcIndexOptions::
// record_parents). A path is reconstructed by walking predecessors from
// both endpoints toward the witnessing hub; where a predecessor's own entry
// was pruned (covered by another hub), reconstruction falls back to the
// recursive hub decomposition — pick any constraint-satisfying neighbor one
// step closer to the hub according to the index.

#ifndef WCSD_CORE_PATH_INDEX_H_
#define WCSD_CORE_PATH_INDEX_H_

#include <vector>

#include "core/wc_index.h"
#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// Reconstructs a shortest w-path from s to t. Returns the vertex sequence
/// s ... t (inclusive), or an empty vector if t is unreachable under w.
/// Requires an index built with record_parents = true (falls back to pure
/// index-guided search otherwise — still correct, more queries).
std::vector<Vertex> QueryConstrainedPath(const WcIndex& index,
                                         const QualityGraph& g, Vertex s,
                                         Vertex t, Quality w);

/// Validates that `path` is a w-path in `g` from its front to its back
/// (every consecutive pair is an edge with quality >= w). Used by tests and
/// examples; an empty path is invalid.
bool IsValidWPath(const QualityGraph& g, const std::vector<Vertex>& path,
                  Quality w);

}  // namespace wcsd

#endif  // WCSD_CORE_PATH_INDEX_H_
