// Quality-constrained shortest PATH queries (paper §V).
//
// The index stores quads (u, d_u, w_u, p_uv): each label entry keeps the
// BFS predecessor recorded during construction (WcIndexOptions::
// record_parents). A path is reconstructed by walking predecessors from
// both endpoints toward the witnessing hub; where a predecessor's own entry
// was pruned (covered by another hub), reconstruction falls back to the
// recursive hub decomposition — pick any constraint-satisfying neighbor one
// step closer to the hub according to the index.

#ifndef WCSD_CORE_PATH_INDEX_H_
#define WCSD_CORE_PATH_INDEX_H_

#include <vector>

#include "core/wc_index.h"
#include "graph/graph.h"
#include "util/types.h"

namespace wcsd {

/// Per-call reconstruction counters: how many unwind steps were resolved
/// by the recorded quad parents vs. the index-guided neighbor fallback.
/// A parent-less index (built without record_parents, or mmap-loaded from
/// a v1 snapshot that dropped the quads) resolves every step through the
/// fallback — correct, but one Query per neighbor per step. Serving
/// engines aggregate fallback_steps so the degraded mode is observable.
struct PathQueryStats {
  size_t parent_steps = 0;
  size_t fallback_steps = 0;
};

/// Reconstructs a shortest w-path from s to t. Returns the vertex sequence
/// s ... t (inclusive), or an empty vector if t is unreachable under w.
/// Works on both label backends (append-oriented and finalized/mmap flat).
/// Fastest with parent quads (record_parents at build, or a v2 snapshot);
/// falls back to pure index-guided search otherwise — still correct, more
/// queries (reported through `stats` when non-null).
std::vector<Vertex> QueryConstrainedPath(const WcIndex& index,
                                         const QualityGraph& g, Vertex s,
                                         Vertex t, Quality w,
                                         PathQueryStats* stats = nullptr);

/// Validates that `path` is a w-path in `g` from its front to its back
/// (every consecutive pair is an edge with quality >= w). Used by tests and
/// examples; an empty path is invalid.
bool IsValidWPath(const QualityGraph& g, const std::vector<Vertex>& path,
                  Quality w);

}  // namespace wcsd

#endif  // WCSD_CORE_PATH_INDEX_H_
