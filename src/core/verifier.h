// Property verifier for WCSD indexes (paper §IV.B).
//
// Checks, by brute force against the graph, the three properties Theorem 1
// claims for Algorithm 3's output:
//   * Soundness   — every entry (h, d, w) in L(u) is witnessed by a real
//                   w-path of length d between u and the hub vertex (and,
//                   when `require_tight`, d is exactly the w-constrained
//                   distance, i.e. the entry sits on the dominance
//                   frontier);
//   * Completeness — Query(s, t, w) equals the constrained-BFS distance for
//                   every checked (s, t, w);
//   * Minimality  — no entry is dominated within its label (together with
//                   Theorem 3 strict monotonicity), and every entry is
//                   necessary: deleting it changes some query answer.
//
// All checks are exponential-free but brute-force (BFS per entry / per
// pair); they are meant for tests and small-to-mid graphs.

#ifndef WCSD_CORE_VERIFIER_H_
#define WCSD_CORE_VERIFIER_H_

#include <cstddef>
#include <string>

#include "core/wc_index.h"
#include "graph/graph.h"
#include "labeling/label_set.h"
#include "order/vertex_order.h"

namespace wcsd {

/// Aggregated verification counters; all-zero violation counts == pass.
struct VerificationReport {
  size_t entries_checked = 0;
  size_t pairs_checked = 0;
  size_t soundness_violations = 0;
  size_t tightness_violations = 0;
  size_t monotonicity_violations = 0;
  size_t dominated_entries = 0;
  size_t unnecessary_entries = 0;
  size_t completeness_violations = 0;

  bool ok() const {
    return soundness_violations == 0 && tightness_violations == 0 &&
           monotonicity_violations == 0 && dominated_entries == 0 &&
           unnecessary_entries == 0 && completeness_violations == 0;
  }

  /// One-line human-readable summary for test failure messages.
  std::string Summary() const;
};

/// Soundness over raw labels: each entry is witnessed by a real path.
/// With `require_tight`, also checks the entry distance is exactly the
/// constrained distance (frontier membership).
VerificationReport VerifySoundness(const LabelSet& labels,
                                   const VertexOrder& order,
                                   const QualityGraph& g, bool require_tight);

/// Theorem 3: within each (vertex, hub) group, distances and qualities are
/// strictly co-monotone, and no entry dominates another.
VerificationReport VerifyMonotonicity(const LabelSet& labels);

/// Completeness: Query(s, t, w) == constrained BFS for every vertex pair
/// and every distinct quality threshold (plus one unsatisfiable threshold).
/// O(|V|^2 |w| (|V|+|E|)) — small graphs only.
VerificationReport VerifyCompleteness(const WcIndex& index,
                                      const QualityGraph& g);

/// Minimality: dominance-freeness plus necessity of every entry.
VerificationReport VerifyMinimality(const WcIndex& index);

/// Runs all checks appropriate for a freshly built WC-INDEX.
VerificationReport VerifyAll(const WcIndex& index, const QualityGraph& g);

}  // namespace wcsd

#endif  // WCSD_CORE_VERIFIER_H_
