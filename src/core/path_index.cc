#include "core/path_index.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "labeling/query.h"

namespace wcsd {

namespace {

// Finds the entry index in L(u) for hub `hub` whose quality is the first
// >= w (Theorem 3: minimal distance for that hub under w). Returns SIZE_MAX
// if absent.
size_t FindHubEntry(std::span<const LabelEntry> lu, Rank hub, Quality w) {
  auto it = std::lower_bound(
      lu.begin(), lu.end(), hub,
      [](const LabelEntry& e, Rank h) { return e.hub < h; });
  size_t i = static_cast<size_t>(it - lu.begin());
  if (i == lu.size() || lu[i].hub != hub) return SIZE_MAX;
  size_t ie = i;
  while (ie < lu.size() && lu[ie].hub == hub) ++ie;
  size_t found = FirstWithQuality(lu, i, ie, w);
  return found == ie ? SIZE_MAX : found;
}

// Walks from `u` back to the hub vertex along a shortest w-path of length
// `dist`, appending vertices u, p1, p2, ..., hub_vertex to `out`.
// Fast path: follow the recorded quad-label parent when the current
// vertex's entry for the hub is present with matching distance. Fallback:
// index-guided neighbor step (any neighbor x with edge quality >= w and
// Query(hub_vertex, x, w) == remaining - 1).
bool UnwindToHub(const WcIndex& index, const QualityGraph& g, Vertex u,
                 Rank hub, Distance dist, Quality w,
                 std::vector<Vertex>* out, PathQueryStats* stats) {
  const Vertex hub_vertex = index.order().VertexAt(hub);
  Vertex cur = u;
  Distance remaining = dist;
  out->push_back(cur);
  while (remaining > 0) {
    Vertex next = kNullVertex;
    if (index.has_parents()) {
      std::span<const LabelEntry> lcur = index.EntriesFor(cur);
      size_t i = FindHubEntry(lcur, hub, w);
      if (i != SIZE_MAX && lcur[i].dist == remaining) {
        next = index.Parents(cur)[i];
        if (next != kNullVertex && stats != nullptr) ++stats->parent_steps;
      }
    }
    if (next == kNullVertex) {
      // Entry pruned (covered via another hub) or parents unavailable:
      // recursive hub decomposition degenerates to one index-guided step.
      for (const Arc& a : g.Neighbors(cur)) {
        if (a.quality < w) continue;
        if (index.Query(hub_vertex, a.to, w) == remaining - 1) {
          next = a.to;
          break;
        }
      }
      if (next != kNullVertex && stats != nullptr) ++stats->fallback_steps;
    }
    if (next == kNullVertex) return false;  // Index inconsistent with graph.
    out->push_back(next);
    cur = next;
    --remaining;
  }
  return cur == hub_vertex;
}

}  // namespace

std::vector<Vertex> QueryConstrainedPath(const WcIndex& index,
                                         const QualityGraph& g, Vertex s,
                                         Vertex t, Quality w,
                                         PathQueryStats* stats) {
  if (s == t) return {s};
  HubQueryResult r = index.QueryWithHub(s, t, w);
  if (r.dist == kInfDistance) return {};

  // s-side: s ... hub (in travel order s -> hub).
  std::vector<Vertex> s_side;
  if (!UnwindToHub(index, g, s, r.via_hub, r.dist_from_s, w, &s_side,
                   stats)) {
    return {};
  }
  // t-side: t ... hub; reversed it continues the route hub -> t.
  std::vector<Vertex> t_side;
  if (!UnwindToHub(index, g, t, r.via_hub, r.dist_to_t, w, &t_side,
                   stats)) {
    return {};
  }
  std::vector<Vertex> path = std::move(s_side);
  for (auto it = t_side.rbegin(); it != t_side.rend(); ++it) {
    if (*it == path.back()) continue;  // Skip the shared hub vertex.
    path.push_back(*it);
  }
  return path;
}

bool IsValidWPath(const QualityGraph& g, const std::vector<Vertex>& path,
                  Quality w) {
  if (path.empty()) return false;
  for (size_t i = 1; i < path.size(); ++i) {
    Quality q = g.EdgeQuality(path[i - 1], path[i]);
    if (q < 0 || q < w) return false;
  }
  return true;
}

}  // namespace wcsd
