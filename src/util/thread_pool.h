// Minimal fixed-size thread pool for the parallel construction pipeline.
//
// The WC-INDEX build dispatches one task per root within a rank batch and
// barriers between batches; a persistent pool avoids paying thread spawn
// cost per batch (batches can be as small as the thread count). Tasks
// receive the index of the worker executing them, so callers can hand each
// worker its own scratch state (BuildWorkspace) without synchronization.

#ifndef WCSD_UTIL_THREAD_POOL_H_
#define WCSD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wcsd {

/// Fixed pool of worker threads executing submitted tasks FIFO. Submit and
/// Wait are intended to be called from one controller thread.
class ThreadPool {
 public:
  /// A unit of work; receives the executing worker's index in
  /// [0, num_threads).
  using Task = std::function<void(size_t worker)>;

  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(Task task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
      ++unfinished_;
    }
    task_ready_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker) {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ with a drained queue
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task(worker);
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--unfinished_ == 0) all_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<Task> tasks_;
  size_t unfinished_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_THREAD_POOL_H_
