#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/failpoint.h"

namespace wcsd {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Applies a failpoint verdict to an IO step. kError surfaces the injected
/// errno; kShort is handled by the write loops (via *short_budget); crash
/// never returns; delay already slept inside Eval.
Status CheckFailpoint(const char* name, const std::string& what,
                      uint64_t* short_budget = nullptr) {
  FailpointResult fp = failpoints::Eval(name);
  if (fp.action == FailpointAction::kError) {
    errno = fp.error_errno;
    return ErrnoStatus(what + " (injected)");
  }
  if (fp.action == FailpointAction::kShort && short_budget != nullptr) {
    *short_budget = fp.arg;
  }
  return Status::OK();
}

Status WriteFully(int fd, const std::string& what, uint64_t offset,
                  bool positional, const void* data, size_t size) {
  uint64_t short_budget = UINT64_MAX;
  WCSD_RETURN_NOT_OK(CheckFailpoint("atomic_file.write",
                                    "write " + what, &short_budget));
  const char* bytes = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    size_t want = size - done;
    // An injected short write truncates what the file will ever hold: the
    // remainder is dropped, as if the process died after `short_budget`
    // bytes. Commit-side sync/rename still run unless also failed, which
    // is exactly the torn-write scenario the snapshot tests probe.
    if (short_budget < want) want = static_cast<size_t>(short_budget);
    if (want == 0) return Status::OK();
    ssize_t n = positional
                    ? pwrite(fd, bytes + done, want,
                             static_cast<off_t>(offset + done))
                    : write(fd, bytes + done, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + what);
    }
    done += static_cast<size_t>(n);
    if (short_budget != UINT64_MAX) {
      short_budget -= static_cast<uint64_t>(n);
    }
  }
  return Status::OK();
}

}  // namespace

Result<AtomicFileWriter> AtomicFileWriter::Open(const std::string& path) {
  WCSD_RETURN_NOT_OK(CheckFailpoint("atomic_file.open", "open " + path));
  std::string tmp = path + ".tmp." + std::to_string(getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return ErrnoStatus("open " + tmp + " for writing");
  return AtomicFileWriter(fd, path, std::move(tmp));
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)) {}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Discard();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Discard(); }

void AtomicFileWriter::Discard() {
  if (fd_ < 0) return;
  close(fd_);
  fd_ = -1;
  unlink(tmp_path_.c_str());
}

Status AtomicFileWriter::Write(const void* data, size_t size) {
  if (fd_ < 0) return Status::InvalidArgument("writer is closed");
  Status st = WriteFully(fd_, tmp_path_, 0, /*positional=*/false, data,
                         size);
  if (!st.ok()) Discard();
  return st;
}

Status AtomicFileWriter::WriteAt(uint64_t offset, const void* data,
                                 size_t size) {
  if (fd_ < 0) return Status::InvalidArgument("writer is closed");
  Status st = WriteFully(fd_, tmp_path_, offset, /*positional=*/true, data,
                         size);
  if (!st.ok()) Discard();
  return st;
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) return Status::InvalidArgument("writer is closed");
  Status st = CheckFailpoint("atomic_file.sync", "fsync " + tmp_path_);
  if (st.ok() && fsync(fd_) < 0) st = ErrnoStatus("fsync " + tmp_path_);
  if (!st.ok()) {
    Discard();
    return st;
  }
  close(fd_);
  fd_ = -1;

  st = CheckFailpoint("atomic_file.rename", "rename " + tmp_path_);
  if (st.ok() && rename(tmp_path_.c_str(), path_.c_str()) < 0) {
    st = ErrnoStatus("rename " + tmp_path_ + " -> " + path_);
  }
  if (!st.ok()) {
    unlink(tmp_path_.c_str());
    return st;
  }

  // The rename is durable only once the directory entry is. A crash after
  // this point loses nothing; a crash before it may resurface the old
  // file — which is still a complete file, never a torn one.
  WCSD_RETURN_NOT_OK(
      CheckFailpoint("atomic_file.dirsync", "fsync parent of " + path_));
  size_t slash = path_.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    // Directory fsync is best-effort: some filesystems refuse it, and the
    // rename itself already happened.
    fsync(dir_fd);
    close(dir_fd);
  }
  return Status::OK();
}

}  // namespace wcsd
