// Wall-clock timing helpers for benches and progress reporting.

#ifndef WCSD_UTIL_TIMER_H_
#define WCSD_UTIL_TIMER_H_

#include <chrono>

namespace wcsd {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_TIMER_H_
