// Monotone bucket priority queue keyed by small integer priorities.
//
// Used by the Minimum Degree Elimination tree decomposition (§IV.D, Def. 8):
// vertices are repeatedly extracted by minimum current degree, and degrees
// change by small deltas, which a bucket queue handles in amortized O(1) via
// lazy deletion.

#ifndef WCSD_UTIL_BUCKET_QUEUE_H_
#define WCSD_UTIL_BUCKET_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcsd {

/// Min-priority queue over element ids [0, n) with non-negative integer
/// keys. Supports key updates via lazy re-insertion: stale entries are
/// skipped at pop time by consulting the authoritative key array. Pops are
/// FIFO within a bucket — this matters for MDE: on a path, FIFO peels both
/// ends alternately and the hierarchy tops out at the center, whereas LIFO
/// would peel one end and produce a degenerate (deep, unbalanced) order.
class BucketQueue {
 public:
  /// `n` elements, keys initially unset (elements must be Pushed).
  explicit BucketQueue(size_t n)
      : key_(n, kAbsent), heads_(), min_bucket_(0) {}

  /// Inserts or updates element `id` with key `key`.
  void Push(uint32_t id, uint32_t key) {
    if (buckets_.size() <= key) {
      buckets_.resize(key + 1);
      heads_.resize(key + 1, 0);
    }
    key_[id] = key;
    buckets_[key].push_back(id);
    if (key < min_bucket_) min_bucket_ = key;
  }

  /// Removes element `id` from the queue (lazy: the stale bucket entry is
  /// skipped later).
  void Erase(uint32_t id) { key_[id] = kAbsent; }

  /// True if no live element remains.
  bool Empty() {
    SkipStale();
    return min_bucket_ >= buckets_.size();
  }

  /// Pops and returns the earliest-inserted id with the minimum key.
  /// Requires !Empty().
  uint32_t PopMin() {
    SkipStale();
    uint32_t id = buckets_[min_bucket_][heads_[min_bucket_]++];
    key_[id] = kAbsent;
    return id;
  }

  /// Current key of `id`, or kAbsent if not in the queue.
  uint32_t KeyOf(uint32_t id) const { return key_[id]; }

  static constexpr uint32_t kAbsent = UINT32_MAX;

 private:
  // Advances min_bucket_ past exhausted buckets and skips stale entries
  // (entries whose recorded key no longer matches the authoritative key).
  void SkipStale() {
    while (min_bucket_ < buckets_.size()) {
      auto& bucket = buckets_[min_bucket_];
      size_t& head = heads_[min_bucket_];
      while (head < bucket.size() && key_[bucket[head]] != min_bucket_) {
        ++head;
      }
      if (head < bucket.size()) return;
      ++min_bucket_;
    }
  }

  std::vector<uint32_t> key_;
  std::vector<std::vector<uint32_t>> buckets_;
  std::vector<size_t> heads_;
  size_t min_bucket_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_BUCKET_QUEUE_H_
