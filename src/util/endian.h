// On-disk byte-order contract for every WCSD binary format.
//
// All serialized formats (LabelSet, FlatLabelSet, WcIndex, snapshots) write
// fixed-width little-endian fields: files produced on any supported host are
// readable on any other. Rather than byte-swapping on big-endian hosts —
// which would forbid the zero-copy mmap path this contract exists for —
// serializers refuse to run there with a clean Status. No supported
// production target is big-endian; the guard documents the assumption
// instead of silently corrupting data if one ever appears.

#ifndef WCSD_UTIL_ENDIAN_H_
#define WCSD_UTIL_ENDIAN_H_

#include <bit>

#include "util/status.h"

namespace wcsd {

/// True on hosts whose native byte order matches the on-disk format.
inline constexpr bool kLittleEndianHost =
    std::endian::native == std::endian::little;

/// OK on little-endian hosts; Unimplemented otherwise. Serializers and
/// deserializers call this before touching bytes.
inline Status CheckSerializationByteOrder() {
  if constexpr (kLittleEndianHost) {
    return Status::OK();
  } else {
    return Status::Unimplemented(
        "WCSD binary formats are little-endian; big-endian hosts are "
        "unsupported");
  }
}

}  // namespace wcsd

#endif  // WCSD_UTIL_ENDIAN_H_
