// Read-only memory-mapped file, RAII-managed.
//
// The snapshot reader maps index files instead of streaming them so serving
// can start without copying a byte of label data: the kernel pages label
// arrays in on first access and shares the clean pages across every process
// mapping the same snapshot.

#ifndef WCSD_UTIL_MMAP_FILE_H_
#define WCSD_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "util/status.h"

namespace wcsd {

/// A read-only mapping of an entire file. Movable; unmaps on destruction.
class MmapFile {
 public:
  MmapFile() = default;

  /// Maps `path` read-only. Fails with IoError if the file cannot be opened
  /// or mapped. An empty file maps successfully with size() == 0.
  static Result<MmapFile> Open(const std::string& path);

  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void Reset();

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_MMAP_FILE_H_
