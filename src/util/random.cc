#include "util/random.h"

#include <cassert>

namespace wcsd {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014). Public-domain reference constants.
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace wcsd
