// Minimal Status/Result types for fallible operations (file IO, parsing).
//
// Following the Arrow/RocksDB idiom: library code on hot paths never throws;
// operations that can fail for environmental reasons return Status (or
// Result<T>), and callers decide how to surface errors.

#ifndef WCSD_UTIL_STATUS_H_
#define WCSD_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace wcsd {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kUnimplemented,
  /// Transient refusal (overload shedding, quarantined shard): the caller
  /// may retry — possibly elsewhere, possibly after backing off.
  kUnavailable,
  /// A whole-request deadline expired before the operation finished.
  kDeadlineExceeded,
};

/// Outcome of a fallible operation: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Accessing the value of a failed
/// Result is a programming error.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_value;` in functions that
  /// return Result<T>.
  Result(T value) : value_(std::move(value)), status_() {}  // NOLINT
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace wcsd

/// Propagates a non-OK Status to the caller, RocksDB-style.
#define WCSD_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::wcsd::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // WCSD_UTIL_STATUS_H_
