// Small numeric summaries used by the bench harness.

#ifndef WCSD_UTIL_STATS_H_
#define WCSD_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wcsd {

/// Summary statistics over a sample of doubles.
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes count/mean/min/max and the 50th/95th/99th percentiles
/// (nearest-rank). Returns zeros for an empty sample.
SampleStats Summarize(std::vector<double> samples);

/// Formats a byte count as a human-readable string ("1.23 GB").
std::string HumanBytes(size_t bytes);

/// Formats seconds adaptively ("815 us", "12.3 ms", "4.56 s").
std::string HumanSeconds(double seconds);

}  // namespace wcsd

#endif  // WCSD_UTIL_STATS_H_
