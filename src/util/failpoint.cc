#include "util/failpoint.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace wcsd {
namespace failpoints {

namespace {

struct Activation {
  FailpointAction action = FailpointAction::kOff;
  int error_errno = 0;
  uint64_t arg = 0;          // bytes for kShort, millis for kDelay
  uint64_t skip = 0;         // stay inert for this many evaluations
  uint64_t count = UINT64_MAX;  // then fire this many times
  std::atomic<uint64_t> hits{0};

  Activation() = default;
  Activation(const Activation& other)
      : action(other.action),
        error_errno(other.error_errno),
        arg(other.arg),
        skip(other.skip),
        count(other.count),
        hits(other.hits.load(std::memory_order_relaxed)) {}
  Activation& operator=(const Activation& other) {
    action = other.action;
    error_errno = other.error_errno;
    arg = other.arg;
    skip = other.skip;
    count = other.count;
    hits.store(other.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Activation> points;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Count of active failpoints; the one word the hot path reads.
std::atomic<uint64_t> g_active{0};

void InstallFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("WCSD_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      // A bad env spec should be loud, not silent: fault-injection runs
      // that silently inject nothing "pass" meaninglessly.
      Status st = InstallFromEnv(env);
      if (!st.ok()) {
        std::fprintf(stderr, "WCSD_FAILPOINTS: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
    }
  });
}

/// Errno names the specs may use; the injection sites only surface errnos
/// a real syscall at that site could produce.
int ErrnoByName(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "EIO") return EIO;
  if (name == "EINTR") return EINTR;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "ECONNRESET") return ECONNRESET;
  if (name == "EPIPE") return EPIPE;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "ENOENT") return ENOENT;
  if (name == "EACCES") return EACCES;
  if (name == "ETIMEDOUT") return ETIMEDOUT;
  if (name == "ECONNREFUSED") return ECONNREFUSED;
  *ok = false;
  return 0;
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status ParseSpec(const std::string& spec, Activation* out) {
  std::string body = spec;
  // Suffixes first: @SKIP and xCOUNT, in either order after the action.
  // Find them from the right so "error:EINTR@2x3" parses cleanly.
  size_t x_at = body.rfind('x');
  if (x_at != std::string::npos && x_at > 0 &&
      body.find_first_not_of("0123456789", x_at + 1) == std::string::npos &&
      x_at + 1 < body.size()) {
    if (!ParseUint(body.substr(x_at + 1), &out->count)) {
      return Status::InvalidArgument("bad failpoint count in " + spec);
    }
    body = body.substr(0, x_at);
  }
  size_t skip_at = body.rfind('@');
  if (skip_at != std::string::npos) {
    if (!ParseUint(body.substr(skip_at + 1), &out->skip)) {
      return Status::InvalidArgument("bad failpoint skip in " + spec);
    }
    body = body.substr(0, skip_at);
  }

  std::string action = body;
  std::string arg;
  size_t colon = body.find(':');
  if (colon != std::string::npos) {
    action = body.substr(0, colon);
    arg = body.substr(colon + 1);
  }
  if (action == "off") {
    out->action = FailpointAction::kOff;
    return Status::OK();
  }
  if (action == "error") {
    out->action = FailpointAction::kError;
    if (arg.empty()) {
      out->error_errno = EIO;
    } else {
      bool ok = false;
      out->error_errno = ErrnoByName(arg, &ok);
      if (!ok) {
        return Status::InvalidArgument("unknown errno name in " + spec);
      }
    }
    return Status::OK();
  }
  if (action == "short") {
    out->action = FailpointAction::kShort;
    if (!ParseUint(arg, &out->arg)) {
      return Status::InvalidArgument("short wants a byte count: " + spec);
    }
    return Status::OK();
  }
  if (action == "delay") {
    out->action = FailpointAction::kDelay;
    if (!ParseUint(arg, &out->arg)) {
      return Status::InvalidArgument("delay wants milliseconds: " + spec);
    }
    return Status::OK();
  }
  if (action == "crash") {
    out->action = FailpointAction::kCrash;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint action in " + spec);
}

}  // namespace

Status Set(const std::string& name, const std::string& spec) {
  Activation activation;
  WCSD_RETURN_NOT_OK(ParseSpec(spec, &activation));
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (activation.action == FailpointAction::kOff) {
    if (it != registry.points.end()) {
      registry.points.erase(it);
      g_active.fetch_sub(1, std::memory_order_release);
    }
    return Status::OK();
  }
  if (it == registry.points.end()) {
    registry.points.emplace(name, activation);
    g_active.fetch_add(1, std::memory_order_release);
  } else {
    it->second = activation;
  }
  return Status::OK();
}

void Clear(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) > 0) {
    g_active.fetch_sub(1, std::memory_order_release);
  }
}

void ClearAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_active.fetch_sub(registry.points.size(), std::memory_order_release);
  registry.points.clear();
}

Status InstallFromEnv(const char* env) {
  if (env == nullptr) return Status::OK();
  std::string text(env);
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t semi = text.find(';', begin);
    if (semi == std::string::npos) semi = text.size();
    if (semi > begin) {
      std::string entry = text.substr(begin, semi - begin);
      size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("bad failpoint entry: " + entry);
      }
      WCSD_RETURN_NOT_OK(Set(entry.substr(0, eq), entry.substr(eq + 1)));
    }
    begin = semi + 1;
  }
  return Status::OK();
}

bool AnyActive() {
  InstallFromEnvOnce();
  return g_active.load(std::memory_order_acquire) > 0;
}

FailpointResult Eval(const char* name) {
  FailpointResult result;
  if (!AnyActive()) return result;

  Registry& registry = TheRegistry();
  uint64_t delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return result;
    Activation& activation = it->second;
    const uint64_t hit =
        activation.hits.fetch_add(1, std::memory_order_relaxed);
    if (hit < activation.skip) return result;
    if (hit - activation.skip >= activation.count) return result;

    result.action = activation.action;
    result.error_errno = activation.error_errno;
    result.arg = activation.arg;
    if (activation.action == FailpointAction::kDelay) {
      delay_ms = activation.arg;
    }
  }
  // Side effects run outside the registry lock: a sleeping failpoint must
  // not serialize every other failpoint evaluation in the process.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (result.action == FailpointAction::kCrash) {
    // The whole point: die with no destructors, no buffered-stream flush,
    // no atexit — what the disk sees is what a power cut would leave.
    _exit(42);
  }
  return result;
}

std::vector<std::string> Active() {
  InstallFromEnvOnce();
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, activation] : registry.points) {
    names.push_back(name);
  }
  return names;
}

}  // namespace failpoints
}  // namespace wcsd
