#include "util/flags.h"

#include <cstdlib>
#include <cstring>

namespace wcsd {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string body(arg + 2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return def;
}

}  // namespace wcsd
