// Epoch-stamped array: O(1) logical re-initialization.
//
// §IV.C "Efficient Initialization": the WC-INDEX construction runs |V|
// constrained BFS rounds, and per-round scratch state (the R vector of
// maximum qualities, the query lookup table T, visited marks) must not cost
// O(|V|) to reset each round or initialization dominates. The classic fix is
// to pair each slot with the epoch in which it was last written; bumping the
// epoch invalidates every slot at once.

#ifndef WCSD_UTIL_EPOCH_ARRAY_H_
#define WCSD_UTIL_EPOCH_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcsd {

/// Fixed-size array of T whose contents can be reset in O(1) by advancing an
/// epoch counter. Reads of slots not written in the current epoch return the
/// configured default value.
template <typename T>
class EpochArray {
 public:
  EpochArray() = default;

  /// Creates an array of `size` slots, all logically equal to `default_value`.
  explicit EpochArray(size_t size, T default_value = T())
      : values_(size, default_value),
        epochs_(size, 0),
        default_(default_value) {}

  /// Re-dimensions the array (destroys contents).
  void Reset(size_t size, T default_value = T()) {
    values_.assign(size, default_value);
    epochs_.assign(size, 0);
    default_ = default_value;
    epoch_ = 1;
  }

  /// Logically resets every slot to the default value. O(1) except for the
  /// rare epoch-counter wrap, which forces a physical clear.
  void Clear() {
    if (++epoch_ == 0) {
      std::fill(epochs_.begin(), epochs_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Returns the value at `i` (default if not written this epoch).
  T Get(size_t i) const {
    return epochs_[i] == epoch_ ? values_[i] : default_;
  }

  /// Writes `value` at `i` within the current epoch.
  void Set(size_t i, T value) {
    values_[i] = value;
    epochs_[i] = epoch_;
  }

  /// True if slot `i` was written in the current epoch.
  bool Contains(size_t i) const { return epochs_[i] == epoch_; }

  size_t size() const { return values_.size(); }

 private:
  std::vector<T> values_;
  std::vector<uint32_t> epochs_;
  T default_{};
  uint32_t epoch_ = 1;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_EPOCH_ARRAY_H_
