// Deterministic fault injection: named, registry-activated failpoints.
//
// Production code marks the places where the environment can fail — a
// write that may be short, a send that may hit ECONNRESET, an fsync that
// may not return, a process that may die between two steps — with a named
// failpoint. In normal operation evaluating a failpoint is one relaxed
// atomic load of a global counter (zero active failpoints short-circuits
// everything), so the marks are free to leave in release builds. Tests and
// operators activate failpoints by name, turning "a crash mid-rename" or
// "a partial send after 100 bytes" from a race you hope to hit into a
// deterministic, repeatable scenario.
//
// Activation is programmatic (Failpoints::Set) or environmental
// (WCSD_FAILPOINTS="name=spec;name=spec", installed once on first registry
// use — this is how the CLI smoke tests crash a snapshot writer mid-commit
// without any test harness in the process).
//
// Spec grammar (one action per failpoint):
//   off                      deactivate
//   error[:ERRNO]            fail with errno (named, e.g. EIO, EINTR,
//                            ECONNRESET; default EIO)
//   short:N                  truncate the operation to N bytes/items
//   delay:MS                 sleep MS milliseconds, then proceed
//   crash                    _exit(42) immediately — no destructors, no
//                            stream flush; indistinguishable on disk from
//                            kill -9 at the marked point
// optionally suffixed with
//   @SKIP                    stay inert for the first SKIP evaluations
//   xCOUNT                   fire COUNT times, then go inert
// e.g. "error:EINTR@2x3" skips twice, fires EINTR three times, then off.
//
// The registry is process-global and thread-safe. Hit counting is atomic,
// so concurrent evaluations of one failpoint each consume one slot of the
// skip/count window in some serialized order.

#ifndef WCSD_UTIL_FAILPOINT_H_
#define WCSD_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace wcsd {

/// What an activated failpoint tells the marked site to do.
enum class FailpointAction : uint8_t {
  kOff = 0,    // proceed normally
  kError,      // fail as if the environment returned `error_errno`
  kShort,      // perform only `arg` bytes/items of the operation
  kDelay,      // sleep `arg` milliseconds, then proceed (already slept
               // by Eval; the site just proceeds)
  kCrash,      // never returned: Eval calls _exit(42)
};

/// One evaluation's verdict. kOff/kDelay mean "proceed"; kError carries the
/// errno to surface; kShort carries the byte/item budget.
struct FailpointResult {
  FailpointAction action = FailpointAction::kOff;
  int error_errno = 0;  // meaningful for kError
  uint64_t arg = 0;     // bytes for kShort

  bool fired() const { return action != FailpointAction::kOff; }
};

namespace failpoints {

/// Activates `name` with `spec` (see the grammar above). Replaces any
/// previous activation of the same name. Fails on an unparseable spec.
Status Set(const std::string& name, const std::string& spec);

/// Deactivates `name` (no-op if inactive).
void Clear(const std::string& name);

/// Deactivates everything. Tests call this in teardown.
void ClearAll();

/// Parses WCSD_FAILPOINTS ("name=spec;name=spec") into activations.
/// Called automatically on first registry use; exposed for tests.
Status InstallFromEnv(const char* env);

/// Evaluates the failpoint `name`: consumes one slot of its skip/count
/// window and returns the verdict. kDelay sleeps before returning; kCrash
/// does not return. Inactive names (the overwhelmingly common case) cost
/// one relaxed atomic load.
FailpointResult Eval(const char* name);

/// Names of currently active failpoints, for diagnostics.
std::vector<std::string> Active();

/// True if any failpoint is active. The fast-path guard Eval uses; exposed
/// so batch sites can hoist the check.
bool AnyActive();

}  // namespace failpoints

/// Evaluate-and-branch helper for IO sites:
///   FailpointResult fp = WCSD_FAILPOINT("snapshot.write.body");
///   if (fp.action == FailpointAction::kError) { errno = fp.error_errno; ... }
#define WCSD_FAILPOINT(name) ::wcsd::failpoints::Eval(name)

}  // namespace wcsd

#endif  // WCSD_UTIL_FAILPOINT_H_
