// Deterministic pseudo-random number generation.
//
// All generators and workloads in this repository take explicit seeds so
// every test, example, and benchmark is reproducible run-to-run. SplitMix64
// is used for seeding and as a general-purpose engine: it is tiny, fast, and
// passes BigCrush, which is more than sufficient for synthetic graphs.

#ifndef WCSD_UTIL_RANDOM_H_
#define WCSD_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wcsd {

/// SplitMix64 engine with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the engine; two Rngs with the same seed produce identical streams.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_RANDOM_H_
