#include "util/stats.h"

#include <algorithm>
#include <cstdio>

namespace wcsd {

namespace {
double NearestRank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(pct / 100.0 * sorted.size());
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}
}  // namespace

SampleStats Summarize(std::vector<double> samples) {
  SampleStats out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  out.min = samples.front();
  out.max = samples.back();
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean = sum / static_cast<double>(samples.size());
  out.p50 = NearestRank(samples, 50.0);
  out.p95 = NearestRank(samples, 95.0);
  out.p99 = NearestRank(samples, 99.0);
  return out;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace wcsd
