// Crash-safe file replacement: write-to-temp, fsync, atomic rename.
//
// A plain truncating ofstream has a torn-file window the width of the whole
// write: a crash (or ENOSPC) mid-way leaves the target half-new. Every
// persistent artifact in this repository (snapshots, shard files, shard-set
// manifests) is written through AtomicFileWriter instead, which guarantees
// the target path is, at every instant, either the complete old file or the
// complete new file:
//
//   1. open  <path>.tmp.<pid>  (O_TRUNC — the temp name is private)
//   2. write the new content (Write / WriteAt; holes read as zeros, same
//      contract as ofstream::seekp past EOF)
//   3. Commit(): fsync(tmp), rename(tmp -> path), fsync(parent dir)
//
// The rename is the commit point; everything before it is invisible at the
// target path. An error or destruction before Commit unlinks the temp file.
//
// Every step is a named failpoint (util/failpoint.h), so tests can inject
// ENOSPC at the write, a crash between fsync and rename, a short write,
// and prove the old file survives:
//   atomic_file.open, atomic_file.write, atomic_file.sync,
//   atomic_file.rename, atomic_file.dirsync
// (crash specs on any of them exit the process AT that step, before the
// step's own syscall runs).

#ifndef WCSD_UTIL_ATOMIC_FILE_H_
#define WCSD_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace wcsd {

class AtomicFileWriter {
 public:
  /// Creates <path>.tmp.<pid> for writing. The target is untouched.
  static Result<AtomicFileWriter> Open(const std::string& path);

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  /// Discards an uncommitted temp file.
  ~AtomicFileWriter();

  /// Appends `size` bytes at the current offset.
  Status Write(const void* data, size_t size);

  /// Writes `size` bytes at an absolute offset (pwrite semantics; does not
  /// move the append cursor). Offsets past EOF leave a zero-filled gap.
  Status WriteAt(uint64_t offset, const void* data, size_t size);

  /// fsync + rename onto the target + fsync of the parent directory. After
  /// OK the new content is durably at the target path; after any error the
  /// target still holds its previous content and the temp file is gone.
  Status Commit();

  /// Unlinks the temp file without touching the target (also what the
  /// destructor does for an uncommitted writer).
  void Discard();

 private:
  AtomicFileWriter(int fd, std::string path, std::string tmp_path)
      : fd_(fd), path_(std::move(path)), tmp_path_(std::move(tmp_path)) {}

  int fd_ = -1;
  std::string path_;
  std::string tmp_path_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_ATOMIC_FILE_H_
