#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wcsd {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* base = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.data_ = static_cast<const std::byte*>(base);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed.
  ::close(fd);
  return file;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace wcsd
