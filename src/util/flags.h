// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--name=value` and `--name value` forms plus boolean switches.
// Deliberately minimal: the bench harness needs scale/seed/query-count knobs,
// not a full flags library.

#ifndef WCSD_UTIL_FLAGS_H_
#define WCSD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace wcsd {

/// Parsed command-line flags with typed, defaulted lookups.
class Flags {
 public:
  /// Parses argv; unrecognized positional arguments are ignored.
  Flags(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `def` if absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of --name, or `def` if absent/unparseable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of --name, or `def` if absent/unparseable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean: `--name`, `--name=true/1` are true; `--name=false/0` false.
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace wcsd

#endif  // WCSD_UTIL_FLAGS_H_
