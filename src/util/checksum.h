// CRC-32C (Castagnoli) checksums for the snapshot format.
//
// CRC-32C is the storage-industry default (iSCSI, ext4, RocksDB block
// checksums): better error-detection spread than CRC-32/zlib and hardware
// acceleration on modern CPUs. This is a portable table-driven
// implementation — snapshot checksum verification is off the query path, so
// software speed (~1 GB/s) is plenty.

#ifndef WCSD_UTIL_CHECKSUM_H_
#define WCSD_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace wcsd {

/// CRC-32C of `size` bytes at `data`. Chain blocks by passing the previous
/// result as `seed` (an empty range returns the seed unchanged).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace wcsd

#endif  // WCSD_UTIL_CHECKSUM_H_
