// Core scalar types shared across the WCSD library.
//
// The paper (Def. 1-3) works on an undirected, unweighted graph whose edges
// carry a real-valued quality. We fix the representation here so every
// subsystem (graph storage, search, labeling, index) agrees on widths and on
// the sentinels used for "unreachable" and "unconstrained".

#ifndef WCSD_UTIL_TYPES_H_
#define WCSD_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace wcsd {

/// Vertex identifier. Graphs are limited to 2^32 - 2 vertices, which is far
/// beyond anything this repository generates; 32 bits keeps label entries
/// compact (12 bytes each).
using Vertex = uint32_t;

/// Path length. Unweighted paths fit easily in 32 bits; the weighted-graph
/// extension (§V) reuses the same width for summed integer edge lengths.
using Distance = uint32_t;

/// Edge quality (the paper's w / delta(e)). Real-valued per the problem
/// definition; float keeps the 12-byte label entry.
using Quality = float;

/// Sentinel: no vertex.
inline constexpr Vertex kNullVertex = std::numeric_limits<Vertex>::max();

/// Sentinel: unreachable / "INF" distance in the paper's figures.
inline constexpr Distance kInfDistance = std::numeric_limits<Distance>::max();

/// Quality of the trivial self path (the paper writes (v, 0, inf)).
inline constexpr Quality kInfQuality = std::numeric_limits<Quality>::infinity();

/// Rank of a vertex in a vertex order: 0 is the highest-priority vertex
/// (processed first, used as hub most aggressively).
using Rank = uint32_t;

}  // namespace wcsd

#endif  // WCSD_UTIL_TYPES_H_
