#include "util/status.h"

namespace wcsd {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace wcsd
