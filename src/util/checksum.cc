#include "util/checksum.h"

#include <array>

namespace wcsd {

namespace {

// Reflected CRC-32C table for polynomial 0x1EDC6F41.
constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrc32cTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace wcsd
