#!/usr/bin/env bash
# Release-build smoke suite for the CLI and the serving stack, extracted from
# .github/workflows/ci.yml so the exact checks CI runs are runnable locally:
#
#   tools/ci_smoke.sh                     # everything, against ./build
#   tools/ci_smoke.sh --build-dir out     # everything, against ./out
#   tools/ci_smoke.sh cli coldtier        # selected sections, in this order
#
# Sections (the default runs all of them, in this order):
#   cli       build/query/verify/snapshot/serve round trips, the compressed
#             snapshot + cold-tier answer-CRC equivalence, sharded serving
#   crash     snapshot rewrite crashed at the commit point leaves the old
#             file byte-identical and still serving
#   net       TCP serving: query families over a live socket, graph-less
#             server refuses kPath cleanly
#   reactors  SO_REUSEPORT per-core serving answers match
#   live      delta + offline update + SIGHUP hot reload, crash-safe update
#   manifest  planned shard set served over TCP, SIGTERM graceful drain
#   degraded  corrupt shard: strict open refuses, --quarantine serves the rest
#   coldtier  memory-capped cold-tier proof: under a ulimit -v cap the flat
#             snapshot cannot even mmap while --cold-tier answers 20k
#             verified queries with the flat backend's exact answer CRC
#
# Sections reuse fixtures written by earlier ones; every section makes the
# fixtures it needs, so any subset works. `degraded` corrupts the planned
# shard set in place, so run it after (or instead of) `manifest`.
set -euo pipefail

BUILD_DIR=build
SECTIONS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --build-dir=*) BUILD_DIR=${1#*=}; shift ;;
    -h|--help)
      sed -n '2,27p' "$0" | sed 's/^# \{0,1\}//'
      exit 0 ;;
    *) SECTIONS+=("$1"); shift ;;
  esac
done

CLI=$BUILD_DIR/wcsd_cli
if [ ! -x "$CLI" ]; then
  echo "ci_smoke: $CLI not found (build the Release tree first)" >&2
  exit 1
fi

banner() { printf '\n=== ci_smoke: %s ===\n' "$1"; }

# Pulls the answer CRC out of a `serve` batch report; the same --seed over
# the same snapshot contents must produce the same CRC on every backend.
crc_of() { sed -n 's/.*answers crc32c=\([0-9a-f]*\).*/\1/p'; }

# Base fixtures shared by every section: a small road graph, its index,
# flat + compressed snapshots, an even 3-shard split, and a planned
# (label-mass-balanced) shard set. Idempotent.
make_fixtures() {
  if [ ! -f ci.wcx ]; then
    "$CLI" generate --out=ci.edges --kind=road --n=400 --levels=5
    "$CLI" build --graph=ci.edges --index=ci.wcx --threads=0
  fi
  [ -f ci.wcsnap ] || "$CLI" snapshot --index=ci.wcx --out=ci.wcsnap
  [ -f ci_c.wcsnap ] || "$CLI" snapshot --index=ci.wcx --out=ci_c.wcsnap --compress
  [ -f ci.shard0 ] || "$CLI" snapshot --index=ci.wcx --out=ci --shards=3
  [ -f ci_planned.manifest ] || "$CLI" shard --index=ci.wcx --out=ci_planned --shards=3
}

section_cli() {
  banner "CLI round trips"
  make_fixtures
  "$CLI" query --index=ci.wcx --s=1 --t=42 --w=2 --flat
  "$CLI" query --index=ci.wcx --s=1 --w=2 --topk=5 --flat
  "$CLI" query --index=ci.wcx --s=1 --t=42 --profile --thresholds=1,2,3,4,5 --flat
  "$CLI" query --index=ci.wcx --s=1 --t=42 --w=2 --path --graph=ci.edges --flat
  "$CLI" verify --graph=ci.edges --index=ci.wcx
  "$CLI" serve --snapshot=ci.wcsnap --queries=20000 --threads=2 --verify
  "$CLI" serve --snapshot=ci.wcsnap --queries=20000 --threads=2 --cache-mb=8
  "$CLI" serve --snapshot=ci.shard0,ci.shard1,ci.shard2 --queries=20000
  "$CLI" serve --snapshot=ci.wcsnap --verify-level=directory --queries=1000
  "$CLI" serve --manifest=ci_planned.manifest --queries=20000 --verify --cache-mb=8
  "$CLI" query --manifest=ci_planned.manifest --s=1 --t=42 --w=2 --cache-mb=4
  "$CLI" query --manifest=ci_planned.manifest --s=1 --w=2 --topk=5
  "$CLI" query --manifest=ci_planned.manifest --s=1 --t=42 --profile --thresholds=1,2,3,4,5
  "$CLI" query --manifest=ci_planned.manifest --s=1 --t=42 --w=2 --path --graph=ci.edges

  banner "compressed snapshot + cold tier answer CRCs"
  flat_crc=$("$CLI" serve --snapshot=ci.wcsnap --queries=20000 --seed=11 --verify | tee /dev/stderr | crc_of)
  comp_crc=$("$CLI" serve --snapshot=ci_c.wcsnap --queries=20000 --seed=11 --verify | tee /dev/stderr | crc_of)
  cold_crc=$("$CLI" serve --snapshot=ci_c.wcsnap --cold-tier --decode-cache-mb=8 \
    --queries=20000 --seed=11 --verify | tee /dev/stderr | crc_of)
  test -n "$flat_crc"
  test "$flat_crc" = "$comp_crc"
  test "$flat_crc" = "$cold_crc"
  # A compressed planned shard set serves the same workload bit-identically.
  [ -f ci_cplanned.manifest ] || "$CLI" shard --index=ci.wcx --out=ci_cplanned --shards=3 --compress
  cshard_crc=$("$CLI" serve --manifest=ci_cplanned.manifest --queries=20000 --seed=11 --verify \
    | tee /dev/stderr | crc_of)
  test "$flat_crc" = "$cshard_crc"
  # --cold-tier on an uncompressed snapshot must be refused, not silently flat.
  if "$CLI" serve --snapshot=ci.wcsnap --cold-tier --queries=100; then
    echo "cold-tier serving unexpectedly accepted an uncompressed snapshot"
    exit 1
  fi
}

section_crash() {
  banner "crash-safe snapshot rewrite"
  make_fixtures
  cp ci.wcsnap ci_before.wcsnap
  set +e
  WCSD_FAILPOINTS="atomic_file.rename=crash" \
    "$CLI" snapshot --index=ci.wcx --out=ci.wcsnap
  status=$?
  set -e
  test "$status" -eq 42
  cmp ci.wcsnap ci_before.wcsnap
  # The crash fired before the rename: the staged temp file is the only
  # debris, and the commit point was never reached.
  ls ci.wcsnap.tmp.* >/dev/null
  rm -f ci.wcsnap.tmp.*
  "$CLI" serve --snapshot=ci.wcsnap --queries=5000 --verify
  # Recovery: a clean rewrite over the survivor must succeed.
  "$CLI" snapshot --index=ci.wcx --out=ci.wcsnap
  "$CLI" serve --snapshot=ci.wcsnap --queries=5000 --verify
}

section_net() {
  banner "network serving"
  make_fixtures
  "$CLI" serve --snapshot=ci.wcsnap --listen=39117 --threads=2 --cache-mb=8 \
    --graph=ci.edges \
    --idle-timeout-ms=20000 --header-timeout-ms=5000 --request-deadline-ms=10000 \
    --max-seconds=30 &
  server_pid=$!
  sleep 2
  "$CLI" query --connect=127.0.0.1:39117 --s=1 --t=42 --w=2 --deadline-ms=5000 --retries=2
  "$CLI" query --connect=127.0.0.1:39117 --s=0 --t=399 --w=5
  # The three v6 query families, round-tripped over the live socket.
  "$CLI" query --connect=127.0.0.1:39117 --s=1 --w=2 --topk=5
  "$CLI" query --connect=127.0.0.1:39117 --s=1 --t=42 --profile --thresholds=1,2,3,4,5
  "$CLI" query --connect=127.0.0.1:39117 --s=1 --t=42 --w=2 --path
  kill -INT "$server_pid"
  wait "$server_pid"
  # A server started WITHOUT --graph must refuse kPath frames cleanly
  # (kNotSupported), not drop the connection.
  "$CLI" serve --snapshot=ci.wcsnap --listen=39121 --max-seconds=30 &
  server_pid=$!
  sleep 2
  if "$CLI" query --connect=127.0.0.1:39121 --s=1 --t=42 --w=2 --path; then
    echo "graph-less server unexpectedly served a path"
    exit 1
  fi
  "$CLI" query --connect=127.0.0.1:39121 --s=1 --t=42 --w=2
  kill -INT "$server_pid"
  wait "$server_pid"
}

section_reactors() {
  banner "per-core serving (--reactors 2)"
  make_fixtures
  "$CLI" serve --snapshot=ci.wcsnap --listen=39120 --reactors=2 \
    --cache-mb=8 --max-seconds=30 &
  server_pid=$!
  sleep 2
  "$CLI" query --connect=127.0.0.1:39120 --s=1 --t=42 --w=2
  "$CLI" query --connect=127.0.0.1:39120 --s=0 --t=399 --w=5
  kill -INT "$server_pid"
  wait "$server_pid"
}

section_live() {
  banner "live-update serving (delta + update + hot reload)"
  make_fixtures
  cp ci.wcsnap ci_live.wcsnap
  cp ci.edges ci_live.edges
  "$CLI" serve --snapshot=ci_live.wcsnap --listen=39119 --watch \
    --cache-mb=4 --max-seconds=60 &
  server_pid=$!
  sleep 2
  dist() { "$CLI" query --connect=127.0.0.1:39119 --s=1 --t=42 --w=2 \
    | sed -E 's/.*\) = ([0-9]+|inf).*/\1/'; }
  before=$(dist)
  echo "before: dist = $before"
  "$CLI" delta --out=ci.delta --base-snapshot=ci_live.wcsnap --add=1,42,5
  "$CLI" update --snapshot=ci_live.wcsnap --graph=ci_live.edges \
    --delta=ci.delta --out=ci_live.wcsnap --out-graph=ci_live.edges
  kill -HUP "$server_pid"
  sleep 2
  after=$(dist)
  echo "after: dist = $after"
  # The inserted quality-5 edge makes dist(1, 42 | w >= 2) = 1.
  test "$before" != "$after"
  test "$after" = "1"
  kill -INT "$server_pid"
  wait "$server_pid" || true
  # Crash safety: an update that dies at the rename commit point
  # (deterministic failpoint, exit 42) leaves the old snapshot
  # byte-identical.
  cp ci_live.wcsnap ci_live_before.wcsnap
  "$CLI" delta --out=ci2.delta --base-snapshot=ci_live.wcsnap --add=5,200,4
  set +e
  WCSD_FAILPOINTS="atomic_file.rename=crash" \
    "$CLI" update --snapshot=ci_live.wcsnap --graph=ci_live.edges \
      --delta=ci2.delta --out=ci_live.wcsnap
  status=$?
  set -e
  test "$status" -eq 42
  cmp ci_live.wcsnap ci_live_before.wcsnap
  rm -f ci_live.wcsnap.tmp.*
  # A delta authored against a superseded snapshot must be refused.
  if "$CLI" update --snapshot=ci.wcsnap --graph=ci.edges \
      --delta=ci2.delta --out=ci_stale.wcsnap; then
    echo "update unexpectedly accepted a mismatched base fingerprint"
    exit 1
  fi
}

section_manifest() {
  banner "manifest-sharded network serving"
  make_fixtures
  "$CLI" serve --manifest=ci_planned.manifest --listen=39118 --threads=2 \
    --drain-ms=3000 --max-seconds=30 &
  server_pid=$!
  sleep 2
  "$CLI" query --connect=127.0.0.1:39118 --s=1 --t=42 --w=2
  "$CLI" query --connect=127.0.0.1:39118 --s=0 --t=399 --w=5
  kill -TERM "$server_pid"
  wait "$server_pid"
}

section_degraded() {
  banner "degraded serving (quarantined shard)"
  make_fixtures
  printf 'XXXXXXXX' | dd of=ci_planned.shard1 bs=1 seek=24 conv=notrunc
  if "$CLI" serve --manifest=ci_planned.manifest --queries=1000; then
    echo "strict open unexpectedly succeeded on a corrupt shard"
    exit 1
  fi
  "$CLI" serve --manifest=ci_planned.manifest --quarantine --queries=20000 | tee degraded.out
  grep -q "DEGRADED: 1 of 3 shards quarantined" degraded.out
  "$CLI" serve --manifest=ci_planned.manifest --quarantine \
    --fallback-graph=ci.edges --queries=20000 | tee fallback.out
  grep -q "answered online via the fallback graph" fallback.out
}

# Memory-capped cold-tier smoke. The ~20k-vertex road index carries ~5.7M
# label entries: ~94 MiB as a flat snapshot, ~19 MiB compressed. Under a
# 64 MiB `ulimit -v` cap (RLIMIT_AS counts file-backed mmap) the flat
# snapshot cannot even map, while --cold-tier pages compressed groups in
# on demand and answers 20k --verify'd queries whose CRC matches the
# uncapped flat backend exactly.
section_coldtier() {
  banner "memory-capped cold-tier serving"
  CAP_KB=65536
  if [ ! -f mem.wcx ]; then
    "$CLI" generate --out=mem.edges --kind=road --n=20000 --levels=5
    "$CLI" build --graph=mem.edges --index=mem.wcx --threads=0
  fi
  [ -f mem.wcsnap ] || "$CLI" snapshot --index=mem.wcx --out=mem.wcsnap
  [ -f mem_c.wcsnap ] || "$CLI" snapshot --index=mem.wcx --out=mem_c.wcsnap --compress
  ls -la mem.wcsnap mem_c.wcsnap
  # Reference answers from the uncapped flat backend.
  flat_crc=$("$CLI" serve --snapshot=mem.wcsnap --queries=20000 --seed=7 --verify \
    | tee /dev/stderr | crc_of)
  test -n "$flat_crc"
  # The flat snapshot must not fit under the cap: the working set IS the cap's
  # point. (ulimit applies inside the subshell only.)
  if (ulimit -v "$CAP_KB" && "$CLI" serve --snapshot=mem.wcsnap --queries=100 --seed=7); then
    echo "flat serving unexpectedly fit under the ${CAP_KB} kB cap"
    exit 1
  fi
  # Cold-tier serving under the same cap answers the full workload,
  # --verify clean, with the exact flat-backend CRC.
  cold_out=$( (ulimit -v "$CAP_KB" && "$CLI" serve --snapshot=mem_c.wcsnap \
    --cold-tier --decode-cache-mb=8 --queries=20000 --seed=7 --verify) | tee /dev/stderr )
  cold_crc=$(printf '%s\n' "$cold_out" | crc_of)
  test "$flat_crc" = "$cold_crc"
  # The decode cache actually ran cold: page-ins must be reported.
  printf '%s\n' "$cold_out" | grep -q "cold page-ins"
}

ALL_SECTIONS=(cli crash net reactors live manifest degraded coldtier)
if [ ${#SECTIONS[@]} -eq 0 ]; then
  SECTIONS=("${ALL_SECTIONS[@]}")
fi
for section in "${SECTIONS[@]}"; do
  case " ${ALL_SECTIONS[*]} " in
    *" $section "*) "section_$section" ;;
    *) echo "ci_smoke: unknown section '$section'" >&2; exit 1 ;;
  esac
done
printf '\nci_smoke: all sections passed: %s\n' "${SECTIONS[*]}"
