// wcsd — command-line front end for the library.
//
// Subcommands:
//   build     --graph=<file> --index=<out> [--order=degree|tree|hybrid]
//             [--threads=<n>] [--batch=<n>] [--format=edges|dimacs]
//             build and save a WC-INDEX; --threads=0 uses all cores via the
//             rank-batched parallel pipeline (identical output), --batch
//             overrides the auto batch schedule
//   query     --index=<file> --s=<v> --t=<v> --w=<q> [--flat]
//             [--path --graph=<file>]
//             [--topk=K [--candidates=v1,v2,...]]
//             [--profile --thresholds=w1,w2,...]
//             answer one query (optionally with the route); --flat serves
//             it from the finalized CSR label backend. --topk ranks the
//             candidates (default: every vertex) by constrained distance
//             from --s and keeps the K closest; --profile sweeps the
//             (w, d) trade-off curve for (--s, --t) at the given
//             thresholds via the interval kernel (one label merge per
//             distinct certified interval, not per threshold)
//   query     --connect=<host:port> --s=<v> --t=<v> --w=<q>
//             [--timeout-ms=5000] [--deadline-ms=D] [--retries=R]
//             [--topk=K [--candidates=...]]
//             [--profile --thresholds=...] [--path]
//             answer one query over the wire protocol from a running
//             `serve --listen` server; --deadline-ms bounds the whole call
//             end to end and --retries retries connect failures and
//             kOverloaded rejections with backoff (both via
//             WcClientOptions). --topk/--profile/--path speak the v6
//             kTopK/kProfile/kPath frames (--path needs the server started
//             with `serve --graph`; servers without one refuse with
//             kNotSupported, surfaced as an Unimplemented status)
//   query     --manifest=<file> --s=<v> --t=<v> --w=<q> [--cache-mb=M]
//             [--topk=K [--candidates=...]]
//             [--profile --thresholds=...] [--path --graph=<file>]
//             answer one query from a mapped shard set (see `shard`);
//             --cache-mb enables the dominance-aware result cache
//   stats     --index=<file>                 label statistics
//   verify    --graph=<file> --index=<file>  brute-force Theorem 1 checks
//   generate  --out=<file> --kind=road|social [--n=...] [--levels=...]
//             [--seed=...]                   write a synthetic dataset
//   snapshot  --index=<file> --out=<file> [--shards=N] [--compress]
//             convert a saved index into the page-aligned, checksummed,
//             mmap'able snapshot format; --shards=N writes N vertex-range
//             shard files <out>.shard0 .. <out>.shard{N-1} instead;
//             --compress stores the labels delta/varint-encoded (v3
//             sections, labeling/compressed_flat.h) — served straight off
//             the blob, bit-identical answers, ~3x smaller at rest
//   shard     --index=<file> --out=<stem> (--shards=N | --max-bytes=B)
//             [--even] [--compress]
//             plan label-mass-balanced shard boundaries (greedy prefix-sum
//             split; --even cuts even vertex ranges instead), write
//             <stem>.shard0 .. <stem>.shard{K-1} snapshot files and the
//             <stem>.manifest shard-set manifest, and print the per-shard
//             balance plus planned-vs-even byte skew
//   delta     --out=<file> [--base-snapshot=<snap>]
//             [--add=u,v,q[;u,v,q...]] [--remove=u,v[,q][;...]]
//             [--upgrade=u,v,q_old,q_new[;...]]
//             author a versioned CRC-checksummed delta log
//             (labeling/delta.h) of edge inserts/deletes/upgrades;
//             --base-snapshot stamps the log with that snapshot's content
//             fingerprint so `update` can refuse a mismatched base
//   update    --snapshot=<in> --graph=<file> --delta=<file> --out=<snap>
//             [--out-graph=<file>] [--format=edges|dimacs]
//             [--order=degree|tree|hybrid] [--threads=<n>]
//             apply a delta log to a snapshot: insert/upgrade-only logs
//             repair the labels in place (Akiba-style resumed constrained
//             BFS, core/dynamic_wc_index.h); any delete falls back to one
//             rebuild. Emits a new snapshot (atomic write; --out may equal
//             --snapshot) with a new content fingerprint, and --out-graph
//             writes the updated edge list so graph and snapshot stay
//             paired for the next update
//   serve     --snapshot=<file>[,<file>,...] | --manifest=<file>
//             [--graph=<file>]
//             [--queries=N] [--threads=T] [--cache-mb=M]
//             [--seed=S] [--levels=L] [--impl=merge|scan|grouped|binary]
//             [--verify] [--verify-level=offsets|directory|deep]
//             [--listen=PORT [--host=ADDR] [--max-seconds=S]
//              [--reactors=R]]
//             [--idle-timeout-ms=MS] [--header-timeout-ms=MS]
//             [--request-deadline-ms=MS] [--max-batch=N] [--drain-ms=MS]
//             [--quarantine [--fallback-graph=<file>]]
//             [--watch [--delta=<file>]]
//             [--cold-tier] [--decode-cache-mb=M]
//             mmap the snapshot(s) — several files are stitched as
//             vertex-range shards, and --manifest opens a whole validated
//             shard set in one step — and either drive a random local batch
//             workload (default) or, with --listen, serve the wire
//             protocol (net/wire.h) on PORT until SIGINT (immediate stop),
//             SIGTERM (graceful drain: finish in-flight work, then exit),
//             or --max-seconds; --reactors=R runs R per-core epoll event
//             loops sharing the port via SO_REUSEPORT (answers are
//             bit-identical at any R; with R>1 and no explicit --threads
//             each engine runs single-threaded so queries execute inline
//             on the owning reactor's core); --verify checks section
//             checksums and deep
//             label invariants at load, --verify-level picks the middle
//             O(hub-groups) tier on its own; --cache-mb=M budgets M MiB
//             for the dominance-aware result cache (serve/result_cache.h;
//             0 = off) and reports its hit rate after a local run;
//             --idle/--header-timeout-ms close silent and slow-loris
//             connections, --request-deadline-ms and --max-batch shed
//             overload with clean error frames, --drain-ms bounds the
//             SIGTERM drain, and --quarantine (manifest only) serves a
//             shard set degraded when some shards are corrupt or missing
//             (--fallback-graph answers quarantined-range queries online;
//             the kTopK/kProfile/kPath families refuse on any quarantined
//             touch regardless — the fallback covers distances only);
//             --graph loads the edge list so the server can answer kPath
//             path-reconstruction frames (omitted = kNotSupported);
//             --watch (with --listen) hot-reloads the snapshot/manifest on
//             SIGHUP or file mtime change: in-flight queries finish on the
//             old index, new requests land on the new one, zero dropped
//             queries, and the wire Stats generation counter (protocol v5)
//             bumps on every swap — with --cache-mb one cache is shared
//             across generations, invalidated scoped-by-delta when --delta
//             names a log whose base fingerprint matches the outgoing
//             snapshot (only entries the delta can touch are dropped),
//             wholesale otherwise; --cold-tier serves a compressed
//             snapshot straight off its mapping — the blob pages in from
//             disk on demand — with a decoded-label cache in front of the
//             varint decode (--decode-cache-mb=M budgets it, default 64;
//             M > 0 on its own enables the cache without requiring the
//             cold tier)
//
// Examples:
//   wcsd_cli generate --out=g.edges --kind=road --n=10000 --levels=5
//   wcsd_cli build --graph=g.edges --index=g.wcx --order=hybrid
//   wcsd_cli query --index=g.wcx --s=3 --t=99 --w=2
//   wcsd_cli snapshot --index=g.wcx --out=g.wcsnap
//   wcsd_cli serve --snapshot=g.wcsnap --queries=100000 --threads=4
//   wcsd_cli shard --index=g.wcx --out=g --shards=4
//   wcsd_cli serve --manifest=g.manifest --listen=9000
//   wcsd_cli delta --out=g.delta --base-snapshot=g.wcsnap --add=3,99,4
//   wcsd_cli update --snapshot=g.wcsnap --graph=g.edges --delta=g.delta \
//       --out=g.wcsnap --out-graph=g.edges
//   wcsd_cli serve --snapshot=g.wcsnap --listen=9000 --watch --cache-mb=64

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/path_index.h"
#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "labeling/delta.h"
#include "labeling/label_stats.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "net/client.h"
#include "net/server.h"
#include "net/swap_service.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "util/checksum.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

namespace wcsd {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wcsd_cli "
               "<build|query|stats|verify|generate|snapshot|shard|delta|"
               "update|serve> "
               "[--flags]\n(see the header of tools/wcsd_cli.cc)\n");
  return 2;
}

Result<QualityGraph> LoadGraph(const Flags& flags) {
  std::string path = flags.GetString("graph", "");
  if (path.empty()) return Status::InvalidArgument("--graph is required");
  std::string format = flags.GetString("format", "edges");
  if (format == "dimacs") return ReadDimacsFile(path);
  if (format == "edges") return ReadEdgeListFile(path);
  return Status::InvalidArgument("unknown --format: " + format);
}

int CmdBuild(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::string out = flags.GetString("index", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --index is required\n");
    return 1;
  }
  WcIndexOptions options = WcIndexOptions::Plus();
  std::string order = flags.GetString("order", "hybrid");
  if (order == "degree") {
    options.ordering = WcIndexOptions::Ordering::kDegree;
  } else if (order == "tree") {
    options.ordering = WcIndexOptions::Ordering::kTreeDecomposition;
  } else if (order == "hybrid") {
    options.ordering = WcIndexOptions::Ordering::kHybrid;
  } else {
    std::fprintf(stderr, "error: unknown --order: %s\n", order.c_str());
    return 1;
  }
  int64_t threads = flags.GetInt("threads", 1);
  int64_t batch = flags.GetInt("batch", 0);
  if (threads < 0 || batch < 0) {
    std::fprintf(stderr, "error: --threads/--batch must be >= 0\n");
    return 1;
  }
  options.num_threads = static_cast<size_t>(threads);
  options.batch_size = static_cast<size_t>(batch);
  Timer timer;
  WcIndex index = WcIndex::Build(graph.value(), options);
  std::printf("built in %.2f s: %zu vertices, %zu entries, %zu bytes\n",
              timer.Seconds(), index.NumVertices(), index.TotalEntries(),
              index.MemoryBytes());
  Status st = index.Save(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s\n", out.c_str());
  return 0;
}

/// Splits "host:port"; returns false on a missing/invalid port.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  *host = spec.substr(0, colon);
  char* end = nullptr;
  long p = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (p <= 0 || p > 65535 || end == nullptr || *end != '\0') return false;
  *port = static_cast<uint16_t>(p);
  return !host->empty();
}

/// Parses a comma-separated list of vertex ids ("3,5,9").
bool ParseVertexList(const std::string& spec, std::vector<Vertex>* out) {
  size_t begin = 0;
  while (begin < spec.size()) {
    size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) comma = spec.size();
    std::string field = spec.substr(begin, comma - begin);
    char* end = nullptr;
    long v = std::strtol(field.c_str(), &end, 10);
    if (field.empty() || end == nullptr || *end != '\0' || v < 0) {
      return false;
    }
    out->push_back(static_cast<Vertex>(v));
    begin = comma + 1;
  }
  return true;
}

/// Parses a comma-separated list of quality thresholds ("1,2.5,4").
bool ParseQualityList(const std::string& spec, std::vector<Quality>* out) {
  size_t begin = 0;
  while (begin < spec.size()) {
    size_t comma = spec.find(',', begin);
    if (comma == std::string::npos) comma = spec.size();
    std::string field = spec.substr(begin, comma - begin);
    char* end = nullptr;
    double w = std::strtod(field.c_str(), &end);
    if (field.empty() || end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<Quality>(w));
    begin = comma + 1;
  }
  return true;
}

/// Resolves --candidates for `query --topk`; an omitted flag means every
/// vertex except the source (the classic "k closest anywhere" shape).
bool ResolveCandidates(const Flags& flags, Vertex source, size_t n,
                       std::vector<Vertex>* out) {
  std::string spec = flags.GetString("candidates", "");
  if (!spec.empty()) {
    if (!ParseVertexList(spec, out)) {
      std::fprintf(stderr, "error: malformed --candidates: %s\n",
                   spec.c_str());
      return false;
    }
    return true;
  }
  out->reserve(n);
  for (size_t v = 0; v < n; ++v) {
    if (static_cast<Vertex>(v) != source) {
      out->push_back(static_cast<Vertex>(v));
    }
  }
  return true;
}

/// Parses --thresholds for `query --profile`.
bool ResolveThresholds(const Flags& flags, std::vector<Quality>* out) {
  std::string spec = flags.GetString("thresholds", "");
  if (spec.empty() || !ParseQualityList(spec, out) || out->empty()) {
    std::fprintf(stderr,
                 "error: --profile wants --thresholds=w1,w2,... (got %s)\n",
                 spec.empty() ? "nothing" : spec.c_str());
    return false;
  }
  return true;
}

void PrintTopK(Vertex source, Quality w, size_t k,
               const std::vector<RankedCandidate>& ranked, double micros,
               const std::string& via) {
  std::printf("top-%zu closest to %u (w >= %g)   (%.1f us%s%s)\n", k, source,
              w, micros, via.empty() ? "" : " via ", via.c_str());
  if (ranked.empty()) std::printf("  (no candidate reachable)\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  #%zu  vertex %u  dist %u\n", i + 1, ranked[i].vertex,
                ranked[i].dist);
  }
}

void PrintProfile(Vertex s, Vertex t,
                  const std::vector<ProfilePoint>& profile, double micros,
                  const std::string& via) {
  std::printf("profile(%u, %u)   (%.1f us%s%s)\n", s, t, micros,
              via.empty() ? "" : " via ", via.c_str());
  for (const ProfilePoint& p : profile) {
    if (p.dist == kInfDistance) {
      std::printf("  w >= %g: INF\n", p.quality);
    } else {
      std::printf("  w >= %g: %u\n", p.quality, p.dist);
    }
  }
}

void PrintPath(Vertex s, Vertex t, Quality w,
               const std::vector<Vertex>& path, double micros,
               const std::string& via) {
  if (path.empty()) {
    std::printf("path(%u, %u | w >= %g) = unreachable   (%.1f us%s%s)\n", s,
                t, w, micros, via.empty() ? "" : " via ", via.c_str());
    return;
  }
  std::printf("path(%u, %u | w >= %g), %zu hops:", s, t, w, path.size() - 1);
  for (Vertex v : path) std::printf(" %u", v);
  std::printf("   (%.1f us%s%s)\n", micros, via.empty() ? "" : " via ",
              via.c_str());
}

int CmdRemoteQuery(const Flags& flags, const std::string& connect) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(connect, &host, &port)) {
    std::fprintf(stderr, "error: --connect wants host:port, got %s\n",
                 connect.c_str());
    return 1;
  }
  int timeout_ms = static_cast<int>(flags.GetInt("timeout-ms", 5000));
  int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  int64_t retries = flags.GetInt("retries", 0);
  if (deadline_ms < 0 || retries < 0) {
    std::fprintf(stderr, "error: --deadline-ms/--retries must be >= 0\n");
    return 1;
  }
  Result<WcClient> client = Status::Unavailable("unconnected");
  if (deadline_ms > 0 || retries > 0) {
    WcClientOptions options;
    options.deadline_ms = static_cast<uint64_t>(deadline_ms);
    options.max_retries = static_cast<uint32_t>(retries);
    client = WcClient::Connect(host, port, options);
  } else {
    client = WcClient::Connect(host, port, timeout_ms);
  }
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  Vertex s = static_cast<Vertex>(flags.GetInt("s", 0));
  Vertex t = static_cast<Vertex>(flags.GetInt("t", 0));
  Quality w = static_cast<Quality>(flags.GetDouble("w", 1.0));
  int64_t topk = flags.GetInt("topk", 0);
  if (topk < 0) {
    std::fprintf(stderr, "error: --topk must be >= 1\n");
    return 1;
  }
  if (topk > 0) {
    // Without --candidates, ask the server how many vertices it serves and
    // rank all of them.
    std::vector<Vertex> candidates;
    std::string spec = flags.GetString("candidates", "");
    if (!spec.empty()) {
      if (!ParseVertexList(spec, &candidates)) {
        std::fprintf(stderr, "error: malformed --candidates: %s\n",
                     spec.c_str());
        return 1;
      }
    } else {
      auto n = client.value().Health();
      if (!n.ok()) {
        std::fprintf(stderr, "error: %s\n", n.status().ToString().c_str());
        return 1;
      }
      if (!ResolveCandidates(flags, s, static_cast<size_t>(n.value()),
                             &candidates)) {
        return 1;
      }
    }
    Timer timer;
    auto ranked =
        client.value().TopK(s, candidates, w, static_cast<uint32_t>(topk));
    if (!ranked.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   ranked.status().ToString().c_str());
      return 1;
    }
    PrintTopK(s, w, static_cast<size_t>(topk), ranked.value(),
              timer.Micros(), connect);
    return 0;
  }
  if (flags.GetBool("profile", false)) {
    std::vector<Quality> thresholds;
    if (!ResolveThresholds(flags, &thresholds)) return 1;
    Timer timer;
    auto profile = client.value().Profile(s, t, thresholds);
    if (!profile.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   profile.status().ToString().c_str());
      return 1;
    }
    PrintProfile(s, t, profile.value(), timer.Micros(), connect);
    return 0;
  }
  if (flags.GetBool("path", false)) {
    Timer timer;
    auto path = client.value().Path(s, t, w);
    if (!path.ok()) {
      std::fprintf(stderr, "error: %s\n", path.status().ToString().c_str());
      return 1;
    }
    PrintPath(s, t, w, path.value(), timer.Micros(), connect);
    return 0;
  }
  Timer timer;
  auto d = client.value().Query(s, t, w);
  double micros = timer.Micros();
  if (!d.ok()) {
    std::fprintf(stderr, "error: %s\n", d.status().ToString().c_str());
    return 1;
  }
  if (d.value() == kInfDistance) {
    std::printf("dist(%u, %u | w >= %g) = INF   (%.1f us over %s)\n", s, t,
                w, micros, connect.c_str());
  } else {
    std::printf("dist(%u, %u | w >= %g) = %u   (%.1f us over %s)\n", s, t,
                w, d.value(), micros, connect.c_str());
  }
  return 0;
}

/// Parses --cache-mb into a byte budget; negative values report an error
/// through the returned flag.
bool ParseCacheBytes(const Flags& flags, size_t* bytes) {
  // 1 TiB upper bound: keeps the <<20 from wrapping and turns a fat-finger
  // budget into an error instead of a bad_alloc abort.
  constexpr int64_t kMaxCacheMb = int64_t{1} << 20;
  int64_t cache_mb = flags.GetInt("cache-mb", 0);
  if (cache_mb < 0 || cache_mb > kMaxCacheMb) {
    std::fprintf(stderr, "error: --cache-mb must be in [0, %lld]\n",
                 static_cast<long long>(kMaxCacheMb));
    return false;
  }
  *bytes = static_cast<size_t>(cache_mb) << 20;
  return true;
}

/// `query --manifest`: answer one query from a mapped shard set.
int CmdManifestQuery(const Flags& flags, const std::string& manifest) {
  QueryEngineOptions options;
  options.num_threads = 1;
  if (!ParseCacheBytes(flags, &options.cache_bytes)) return 1;
  // --path over a shard set steps greedily through the graph, so the graph
  // is required (shard mappings carry labels only, never parent quads).
  if (flags.GetBool("path", false)) {
    auto graph = LoadGraph(flags);
    if (!graph.ok()) {
      std::fprintf(stderr, "error (need --graph for --path): %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    options.graph =
        std::make_shared<const QualityGraph>(std::move(graph).value());
  }
  auto engine = ShardedQueryEngine::OpenManifest(manifest, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  Vertex s = static_cast<Vertex>(flags.GetInt("s", 0));
  Vertex t = static_cast<Vertex>(flags.GetInt("t", 0));
  Quality w = static_cast<Quality>(flags.GetDouble("w", 1.0));
  if (s >= engine.value().NumVertices() ||
      t >= engine.value().NumVertices()) {
    std::fprintf(stderr, "error: vertex out of range (n=%zu)\n",
                 engine.value().NumVertices());
    return 1;
  }
  int64_t topk = flags.GetInt("topk", 0);
  if (topk > 0) {
    std::vector<Vertex> candidates;
    if (!ResolveCandidates(flags, s, engine.value().NumVertices(),
                           &candidates)) {
      return 1;
    }
    std::vector<RankedCandidate> ranked;
    Timer timer;
    ServeOutcome outcome = engine.value().TopKEx(
        s, candidates, w, static_cast<size_t>(topk), &ranked);
    if (outcome != ServeOutcome::kOk) {
      std::fprintf(stderr, "error: %s\n",
                   outcome == ServeOutcome::kNotSupported
                       ? "not supported by this shard set"
                       : "shard unavailable");
      return 1;
    }
    PrintTopK(s, w, static_cast<size_t>(topk), ranked, timer.Micros(),
              manifest);
    return 0;
  }
  if (flags.GetBool("profile", false)) {
    std::vector<Quality> thresholds;
    if (!ResolveThresholds(flags, &thresholds)) return 1;
    std::vector<ProfilePoint> profile;
    Timer timer;
    ServeOutcome outcome = engine.value().ProfileEx(s, t, thresholds,
                                                    &profile);
    if (outcome != ServeOutcome::kOk) {
      std::fprintf(stderr, "error: shard unavailable\n");
      return 1;
    }
    PrintProfile(s, t, profile, timer.Micros(), manifest);
    return 0;
  }
  if (flags.GetBool("path", false)) {
    std::vector<Vertex> path;
    Timer timer;
    ServeOutcome outcome = engine.value().PathEx(s, t, w, &path);
    if (outcome != ServeOutcome::kOk) {
      std::fprintf(stderr, "error: %s\n",
                   outcome == ServeOutcome::kNotSupported
                       ? "path needs --graph"
                       : "shard unavailable");
      return 1;
    }
    PrintPath(s, t, w, path, timer.Micros(), manifest);
    return 0;
  }
  Timer timer;
  Distance d = engine.value().Query(s, t, w);
  double micros = timer.Micros();
  if (d == kInfDistance) {
    std::printf("dist(%u, %u | w >= %g) = INF   (%.1f us, %zu shards)\n", s,
                t, w, micros, engine.value().num_shards());
  } else {
    std::printf("dist(%u, %u | w >= %g) = %u   (%.1f us, %zu shards)\n", s,
                t, w, d, micros, engine.value().num_shards());
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  std::string connect = flags.GetString("connect", "");
  if (!connect.empty()) return CmdRemoteQuery(flags, connect);
  std::string manifest = flags.GetString("manifest", "");
  if (!manifest.empty()) return CmdManifestQuery(flags, manifest);
  auto loaded = WcIndex::Load(flags.GetString("index", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  WcIndex& index = loaded.value();
  if (flags.GetBool("flat", false)) index.Finalize();
  Vertex s = static_cast<Vertex>(flags.GetInt("s", 0));
  Vertex t = static_cast<Vertex>(flags.GetInt("t", 0));
  Quality w = static_cast<Quality>(flags.GetDouble("w", 1.0));
  if (s >= index.NumVertices() || t >= index.NumVertices()) {
    std::fprintf(stderr, "error: vertex out of range (n=%zu)\n",
                 index.NumVertices());
    return 1;
  }
  int64_t topk = flags.GetInt("topk", 0);
  if (topk > 0) {
    std::vector<Vertex> candidates;
    if (!ResolveCandidates(flags, s, index.NumVertices(), &candidates)) {
      return 1;
    }
    Timer timer;
    std::vector<RankedCandidate> ranked =
        TopKClosest(index, s, candidates, w, static_cast<size_t>(topk));
    PrintTopK(s, w, static_cast<size_t>(topk), ranked, timer.Micros(), "");
    return 0;
  }
  if (flags.GetBool("profile", false)) {
    std::vector<Quality> thresholds;
    if (!ResolveThresholds(flags, &thresholds)) return 1;
    size_t merges = 0;
    Timer timer;
    std::vector<ProfilePoint> profile =
        QualityProfile(index, s, t, thresholds, &merges);
    PrintProfile(s, t, profile, timer.Micros(), "");
    std::printf("  (%zu label merge%s for %zu thresholds)\n", merges,
                merges == 1 ? "" : "s", thresholds.size());
    return 0;
  }
  Timer timer;
  Distance d = index.Query(s, t, w);
  double micros = timer.Micros();
  if (d == kInfDistance) {
    std::printf("dist(%u, %u | w >= %g) = INF   (%.1f us)\n", s, t, w,
                micros);
    return 0;
  }
  std::printf("dist(%u, %u | w >= %g) = %u   (%.1f us)\n", s, t, w, d,
              micros);
  if (flags.GetBool("path", false)) {
    auto graph = LoadGraph(flags);
    if (!graph.ok()) {
      std::fprintf(stderr, "error (need --graph for --path): %s\n",
                   graph.status().ToString().c_str());
      return 1;
    }
    std::printf("path:");
    for (Vertex v : QueryConstrainedPath(index, graph.value(), s, t, w)) {
      std::printf(" %u", v);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  auto loaded = WcIndex::Load(flags.GetString("index", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const WcIndex& index = loaded.value();
  LabelStats stats = ComputeLabelStats(index.labels());
  std::printf("vertices: %zu\n", index.NumVertices());
  std::printf("%s\n", stats.Summary().c_str());
  std::printf("bytes: %zu\n", index.MemoryBytes());
  std::printf("label-size histogram (bucket = [2^i, 2^(i+1))):\n");
  auto histogram = LabelSizeHistogram(index.labels());
  for (size_t i = 0; i < histogram.size(); ++i) {
    std::printf("  [%6zu, %6zu): %zu\n", size_t{1} << i, size_t{1} << (i + 1),
                histogram[i]);
  }
  return 0;
}

int CmdVerify(const Flags& flags) {
  auto graph = LoadGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto loaded = WcIndex::Load(flags.GetString("index", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  VerificationReport report = VerifyAll(loaded.value(), graph.value());
  std::printf("%s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  std::string kind = flags.GetString("kind", "road");
  size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  int levels = static_cast<int>(flags.GetInt("levels", 5));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  QualityGraph g;
  if (kind == "road") {
    RoadOptions options;
    options.rows = options.cols =
        std::max<size_t>(4, static_cast<size_t>(std::sqrt(
                                static_cast<double>(n))));
    options.quality.num_levels = levels;
    options.arterial_spacing =
        static_cast<size_t>(flags.GetInt("arterial_spacing", 0));
    g = GenerateRoadNetwork(options, seed);
  } else if (kind == "social") {
    QualityModel quality;
    quality.num_levels = levels;
    size_t epv = static_cast<size_t>(flags.GetInt("edges_per_vertex", 10));
    g = GenerateBarabasiAlbert(std::max<size_t>(8, n), epv, quality, seed);
  } else {
    std::fprintf(stderr, "error: unknown --kind: %s\n", kind.c_str());
    return 1;
  }
  Status st = WriteEdgeListFile(g, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu edges, |w| = %zu\n", out.c_str(),
              g.NumVertices(), g.NumEdges(), g.DistinctQualities().size());
  return 0;
}

int CmdSnapshot(const Flags& flags) {
  auto loaded = WcIndex::Load(flags.GetString("index", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  WcIndex& index = loaded.value();
  index.Finalize();
  SnapshotWriteOptions write_options;
  write_options.compress = flags.GetBool("compress", false);
  int64_t shards = flags.GetInt("shards", 0);
  if (shards < 0) {
    std::fprintf(stderr, "error: --shards must be >= 0\n");
    return 1;
  }
  if (shards <= 1) {
    Status st = index.SaveSnapshot(out, write_options);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu vertices, %zu entries\n", out.c_str(),
                index.NumVertices(), index.TotalEntries());
    return 0;
  }
  uint64_t n = index.NumVertices();
  for (int64_t k = 0; k < shards; ++k) {
    uint64_t begin = n * static_cast<uint64_t>(k) /
                     static_cast<uint64_t>(shards);
    uint64_t end = n * static_cast<uint64_t>(k + 1) /
                   static_cast<uint64_t>(shards);
    std::string path = out + ".shard" + std::to_string(k);
    Status st = WriteSnapshotShard(path, index.flat_labels(), begin, end, n,
                                   /*parents=*/{}, write_options);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: vertices [%llu, %llu)\n", path.c_str(),
                static_cast<unsigned long long>(begin),
                static_cast<unsigned long long>(end));
  }
  return 0;
}

int CmdShard(const Flags& flags) {
  auto loaded = WcIndex::Load(flags.GetString("index", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  int64_t shards = flags.GetInt("shards", 0);
  int64_t max_bytes = flags.GetInt("max-bytes", 0);
  if (shards < 0 || max_bytes < 0 || (shards > 0) == (max_bytes > 0)) {
    std::fprintf(stderr,
                 "error: pass exactly one of --shards=N or --max-bytes=B\n");
    return 1;
  }
  WcIndex& index = loaded.value();
  index.Finalize();
  const FlatLabelSet& flat = index.flat_labels();

  ShardPlanOptions options;
  options.num_shards = static_cast<size_t>(shards);
  options.max_bytes = static_cast<uint64_t>(max_bytes);
  options.even_vertex = flags.GetBool("even", false);
  Timer timer;
  auto plan = PlanShards(flat, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  SnapshotWriteOptions write_options;
  write_options.compress = flags.GetBool("compress", false);
  auto written = WriteShardSet(out, flat, plan.value(), write_options);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.status().ToString().c_str());
    return 1;
  }
  for (size_t k = 0; k < plan.value().shards.size(); ++k) {
    const PlannedShard& shard = plan.value().shards[k];
    std::printf(
        "wrote %s: vertices [%llu, %llu) — %llu entries, %.2f MiB\n",
        written.value().shard_paths[k].c_str(),
        static_cast<unsigned long long>(shard.begin),
        static_cast<unsigned long long>(shard.end),
        static_cast<unsigned long long>(shard.entry_count),
        static_cast<double>(shard.bytes) / (1024.0 * 1024.0));
  }
  double skew = plan.value().ByteSkew();
  if (options.num_shards > 1 && !options.even_vertex) {
    ShardPlanOptions even = options;
    even.even_vertex = true;
    auto even_plan = PlanShards(flat, even);
    if (even_plan.ok()) {
      std::printf("byte skew (max/mean): planned %.3f vs even %.3f\n", skew,
                  even_plan.value().ByteSkew());
    }
  } else {
    std::printf("byte skew (max/mean): %.3f\n", skew);
  }
  std::printf("wrote %s: %zu shards, %zu vertices, %zu entries (%.2f s)\n",
              written.value().manifest_path.c_str(),
              plan.value().shards.size(), index.NumVertices(),
              index.TotalEntries(), timer.Seconds());
  return 0;
}

/// Parses a ';'-separated list of ','-separated number tuples, e.g.
/// "1,2,3.5;4,5,2". Returns false on any malformed field.
bool ParseTupleList(const std::string& spec,
                    std::vector<std::vector<double>>* out) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t semi = spec.find(';', begin);
    if (semi == std::string::npos) semi = spec.size();
    if (semi > begin) {
      std::vector<double> tuple;
      size_t field_begin = begin;
      while (field_begin <= semi) {
        size_t comma = spec.find(',', field_begin);
        if (comma == std::string::npos || comma > semi) comma = semi;
        std::string field = spec.substr(field_begin, comma - field_begin);
        char* end = nullptr;
        double value = std::strtod(field.c_str(), &end);
        if (field.empty() || end == nullptr || *end != '\0') return false;
        tuple.push_back(value);
        field_begin = comma + 1;
        if (comma == semi) break;
      }
      out->push_back(std::move(tuple));
    }
    begin = semi + 1;
  }
  return true;
}

/// Appends records parsed from one --add/--remove/--upgrade flag value.
/// `arity_lo`/`arity_hi` bound the accepted tuple sizes.
bool AppendDeltaRecords(const std::string& spec, DeltaOp op, size_t arity_lo,
                        size_t arity_hi, const char* flag,
                        std::vector<DeltaRecord>* records) {
  std::vector<std::vector<double>> tuples;
  if (!ParseTupleList(spec, &tuples)) {
    std::fprintf(stderr, "error: malformed --%s: %s\n", flag, spec.c_str());
    return false;
  }
  for (const auto& tuple : tuples) {
    if (tuple.size() < arity_lo || tuple.size() > arity_hi ||
        tuple[0] < 0 || tuple[1] < 0 || tuple[0] != std::floor(tuple[0]) ||
        tuple[1] != std::floor(tuple[1]) || tuple[0] == tuple[1]) {
      std::fprintf(stderr, "error: malformed --%s tuple in %s\n", flag,
                   spec.c_str());
      return false;
    }
    DeltaRecord record;
    record.op = static_cast<uint8_t>(op);
    record.u = static_cast<Vertex>(tuple[0]);
    record.v = static_cast<Vertex>(tuple[1]);
    switch (op) {
      case DeltaOp::kInsert:
        record.quality = static_cast<Quality>(tuple[2]);
        break;
      case DeltaOp::kDelete:
        // Quality optional: without it, scoping degrades to any constraint.
        record.quality = tuple.size() > 2 ? static_cast<Quality>(tuple[2])
                                          : kInfQuality;
        break;
      case DeltaOp::kUpgrade:
        record.old_quality = static_cast<Quality>(tuple[2]);
        record.quality = static_cast<Quality>(tuple[3]);
        if (record.quality < record.old_quality) {
          std::fprintf(stderr,
                       "error: --upgrade wants q_old <= q_new in %s "
                       "(a downgrade is a delete + insert)\n",
                       spec.c_str());
          return false;
        }
        break;
    }
    records->push_back(record);
  }
  return true;
}

int CmdDelta(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  DeltaLog log;
  std::string base = flags.GetString("base-snapshot", "");
  if (!base.empty()) {
    auto mapped = LoadSnapshotMmap(base);
    if (!mapped.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    log.base_fingerprint = IndexContentFingerprint(mapped.value().labels);
  }
  DeltaBatch batch;
  if (!AppendDeltaRecords(flags.GetString("add", ""), DeltaOp::kInsert, 3, 3,
                          "add", &batch.records) ||
      !AppendDeltaRecords(flags.GetString("remove", ""), DeltaOp::kDelete, 2,
                          3, "remove", &batch.records) ||
      !AppendDeltaRecords(flags.GetString("upgrade", ""), DeltaOp::kUpgrade,
                          4, 4, "upgrade", &batch.records)) {
    return 1;
  }
  if (batch.records.empty()) {
    std::fprintf(stderr,
                 "error: pass at least one --add/--remove/--upgrade\n");
    return 1;
  }
  log.batches.push_back(std::move(batch));
  Status st = WriteDeltaLog(out, log);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu records%s (base fingerprint %016llx)\n",
              out.c_str(), log.TotalRecords(),
              log.HasDelete() ? " (has deletes: update will rebuild)" : "",
              static_cast<unsigned long long>(log.base_fingerprint));
  return 0;
}

int CmdUpdate(const Flags& flags) {
  std::string snapshot = flags.GetString("snapshot", "");
  std::string delta_path = flags.GetString("delta", "");
  std::string out = flags.GetString("out", "");
  if (snapshot.empty() || delta_path.empty() || out.empty()) {
    std::fprintf(stderr,
                 "error: --snapshot, --delta, and --out are required\n");
    return 1;
  }
  auto mapped = LoadSnapshotMmap(snapshot);
  if (!mapped.ok()) {
    std::fprintf(stderr, "error: %s\n", mapped.status().ToString().c_str());
    return 1;
  }
  MappedSnapshot& mm = mapped.value();
  if (!mm.info.IsFullRange() || !mm.info.has_order) {
    std::fprintf(stderr,
                 "error: update wants a full snapshot with a stored vertex "
                 "order (shard files cannot be updated in place)\n");
    return 1;
  }
  auto log = ReadDeltaLog(delta_path);
  if (!log.ok()) {
    std::fprintf(stderr, "error: %s\n", log.status().ToString().c_str());
    return 1;
  }
  const uint64_t old_fingerprint = IndexContentFingerprint(mm.labels);
  if (log.value().base_fingerprint != 0 &&
      log.value().base_fingerprint != old_fingerprint) {
    std::fprintf(stderr,
                 "error: delta base fingerprint %016llx does not match "
                 "snapshot %016llx — wrong snapshot for this log\n",
                 static_cast<unsigned long long>(
                     log.value().base_fingerprint),
                 static_cast<unsigned long long>(old_fingerprint));
    return 1;
  }
  auto graph = LoadGraph(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (graph.value().NumVertices() != mm.info.num_vertices_total) {
    std::fprintf(stderr,
                 "error: --graph has %zu vertices but the snapshot serves "
                 "%llu — update wants the exact graph the snapshot was "
                 "built from\n",
                 graph.value().NumVertices(),
                 static_cast<unsigned long long>(
                     mm.info.num_vertices_total));
    return 1;
  }
  WcIndexOptions options = WcIndexOptions::Plus();
  std::string order = flags.GetString("order", "hybrid");
  if (order == "degree") {
    options.ordering = WcIndexOptions::Ordering::kDegree;
  } else if (order == "tree") {
    options.ordering = WcIndexOptions::Ordering::kTreeDecomposition;
  } else if (order != "hybrid") {
    std::fprintf(stderr, "error: unknown --order: %s\n", order.c_str());
    return 1;
  }
  int64_t threads = flags.GetInt("threads", 1);
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 1;
  }
  options.num_threads = static_cast<size_t>(threads);

  Timer timer;
  DynamicWcIndex dyn(graph.value(), VertexOrder(mm.order_by_rank),
                     mm.labels.ToLabelSet(), options);
  const bool incremental = dyn.Apply(log.value());
  std::string out_graph = flags.GetString("out-graph", "");
  if (!out_graph.empty()) {
    Status st = WriteEdgeListFile(dyn.Snapshot(), out_graph);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  WcIndex updated = dyn.ReleaseIndex();
  updated.Finalize();
  const uint64_t new_fingerprint =
      IndexContentFingerprint(updated.flat_labels());
  Status st = updated.SaveSnapshot(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "applied %zu delta records %s in %.3f s\n"
      "wrote %s: %zu vertices, %zu entries\n"
      "fingerprint %016llx -> %016llx\n",
      log.value().TotalRecords(),
      incremental ? "incrementally" : "via rebuild (log has deletes)",
      timer.Seconds(), out.c_str(), updated.NumVertices(),
      updated.TotalEntries(),
      static_cast<unsigned long long>(old_fingerprint),
      static_cast<unsigned long long>(new_fingerprint));
  return 0;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t comma = list.find(',', begin);
    if (comma == std::string::npos) comma = list.size();
    if (comma > begin) parts.push_back(list.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

/// 0 = keep serving, SIGINT = stop now, SIGTERM = drain gracefully.
volatile std::sig_atomic_t g_signal_received = 0;

void HandleStopSignal(int sig) { g_signal_received = sig; }

/// Set by SIGHUP under `serve --watch`: reload the snapshot and hot-swap.
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleReloadSignal(int) { g_reload_requested = 1; }

/// Nanosecond mtime of `path`, or -1 when it cannot be stat'ed. A change
/// (including appearing/disappearing) triggers a --watch reload.
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

/// `serve --listen`: expose the mapped engine over the wire protocol until
/// SIGINT (immediate stop), SIGTERM (graceful drain), or --max-seconds
/// (scripted runs; drains, so in-flight work still finishes). `on_tick`,
/// when set, runs every poll interval on this thread — the --watch reload
/// check hooks in here, off the server's event loop.
int RunWireServer(std::shared_ptr<const QueryService> service,
                  const Flags& flags, size_t num_vertices,
                  size_t served_threads,
                  const std::function<void()>& on_tick = {}) {
  int64_t port = flags.GetInt("listen", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "error: --listen wants a port in [0, 65535]\n");
    return 1;
  }
  WcServerOptions options;
  options.bind_address = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(port);
  int64_t idle_ms = flags.GetInt("idle-timeout-ms", 0);
  int64_t header_ms = flags.GetInt("header-timeout-ms", 0);
  int64_t deadline_ms = flags.GetInt("request-deadline-ms", 0);
  int64_t max_batch = flags.GetInt("max-batch", 0);
  int64_t drain_ms = flags.GetInt("drain-ms", 5000);
  if (idle_ms < 0 || header_ms < 0 || deadline_ms < 0 || max_batch < 0 ||
      drain_ms < 0) {
    std::fprintf(stderr, "error: serve timeouts/limits must be >= 0\n");
    return 1;
  }
  options.idle_timeout_ms = static_cast<uint64_t>(idle_ms);
  options.header_timeout_ms = static_cast<uint64_t>(header_ms);
  options.request_deadline_ms = static_cast<uint64_t>(deadline_ms);
  options.max_batch_queries = static_cast<size_t>(max_batch);
  options.drain_deadline_ms = static_cast<uint64_t>(drain_ms);
  int64_t reactors = flags.GetInt("reactors", 1);
  if (reactors < 1 || reactors > 1024) {
    std::fprintf(stderr, "error: --reactors wants a count in [1, 1024]\n");
    return 1;
  }
  options.num_reactors = static_cast<size_t>(reactors);
  auto server = WcServer::Start(std::move(service), options);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %zu vertices on %s:%u (%zu reactor%s, %zu worker "
              "thread%s)\n",
              num_vertices, options.bind_address.c_str(),
              server.value().port(), server.value().num_reactors(),
              server.value().num_reactors() == 1 ? "" : "s", served_threads,
              served_threads == 1 ? "" : "s");
  std::fflush(stdout);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  double max_seconds = flags.GetDouble("max-seconds", 0.0);
  Timer timer;
  while (g_signal_received == 0 &&
         (max_seconds <= 0.0 || timer.Seconds() < max_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (on_tick) on_tick();
  }
  if (g_signal_received == SIGINT) {
    server.value().Stop();
  } else {
    // SIGTERM or --max-seconds: finish what is in flight, within --drain-ms.
    std::printf("draining (up to %lld ms)...\n",
                static_cast<long long>(drain_ms));
    std::fflush(stdout);
    server.value().Drain();
  }
  WcServerStats stats = server.value().stats();
  std::printf(
      "served %llu frames over %llu connections (%llu protocol errors, "
      "%llu overload + %llu deadline rejections, %llu shard-unavailable, "
      "%llu timeout closes)\n",
      static_cast<unsigned long long>(stats.frames_served),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.overload_rejections),
      static_cast<unsigned long long>(stats.deadline_rejections),
      static_cast<unsigned long long>(stats.shard_unavailable),
      static_cast<unsigned long long>(stats.timeout_closed));
  return 0;
}

/// One opened serving generation: the service plus what the serve loop
/// needs to describe and (under --watch) invalidate-and-swap it.
struct OpenedService {
  std::shared_ptr<const QueryService> service;
  size_t n = 0;
  size_t served_threads = 1;
  size_t mapped_files = 0;
  size_t quarantined = 0;
  /// True when the opened engine serves the compressed label backend.
  bool compressed = false;
  /// Index content fingerprint when caching, 0 otherwise.
  uint64_t cache_fingerprint = 0;
  /// Set for single-snapshot engines only: the reachability-coupled cache
  /// invalidation probes the OLD generation's index through this.
  std::shared_ptr<const QueryEngine> engine;
};

/// Opens the serving engine for `serve` (and re-opens it on --watch
/// reloads): one full snapshot through QueryEngine, anything else through
/// the sharded engine.
Result<OpenedService> OpenServeService(const std::vector<std::string>& paths,
                                       const std::string& manifest,
                                       bool single_full,
                                       const QueryEngineOptions& options,
                                       const SnapshotLoadOptions& load,
                                       const DegradedOpenOptions& degraded) {
  OpenedService opened;
  opened.mapped_files = paths.size();
  if (single_full) {
    auto engine = QueryEngine::Open(paths[0], options, load);
    if (!engine.ok()) return engine.status();
    auto shared =
        std::make_shared<const QueryEngine>(std::move(engine).value());
    opened.n = shared->index().NumVertices();
    opened.served_threads = shared->num_threads();
    opened.compressed = shared->index().compressed();
    opened.cache_fingerprint = shared->cache_fingerprint();
    opened.engine = shared;
    opened.service = MakeQueryService(std::move(shared));
  } else {
    auto engine = manifest.empty()
                      ? ShardedQueryEngine::OpenMmap(paths, options, load)
                      : ShardedQueryEngine::OpenManifest(manifest, options,
                                                         load, degraded);
    if (!engine.ok()) return engine.status();
    auto shared = std::make_shared<const ShardedQueryEngine>(
        std::move(engine).value());
    opened.n = shared->NumVertices();
    opened.served_threads = shared->num_threads();
    opened.mapped_files = shared->num_shards();
    opened.quarantined = shared->num_quarantined();
    opened.compressed = shared->compressed();
    opened.cache_fingerprint = shared->cache_fingerprint();
    opened.service = MakeQueryService(std::move(shared));
  }
  return opened;
}

int CmdServe(const Flags& flags) {
  std::vector<std::string> paths =
      SplitCommaList(flags.GetString("snapshot", ""));
  std::string manifest = flags.GetString("manifest", "");
  if (paths.empty() == manifest.empty()) {
    std::fprintf(stderr,
                 "error: pass exactly one of --snapshot or --manifest\n");
    return 1;
  }
  QueryEngineOptions options;
  int64_t threads = flags.GetInt("threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 1;
  }
  options.num_threads = static_cast<size_t>(threads);
  // Per-core serving: with several reactors and no explicit --threads, run
  // each engine single-threaded so queries execute inline on the reactor
  // thread that owns the connection — one core runs one reactor end-to-end
  // with no cross-core handoff (the reactors themselves are the
  // parallelism). An explicit --threads overrides.
  if (!flags.Has("threads") && flags.GetInt("reactors", 1) > 1) {
    options.num_threads = 1;
  }
  if (!ParseCacheBytes(flags, &options.cache_bytes)) return 1;
  // Cold tier: serve a compressed snapshot straight off its mapping, with
  // a bounded decoded-label cache in front of the varint decode. --cold-tier
  // alone budgets a 64 MiB default; --decode-cache-mb picks the budget
  // explicitly (and implies cold tier on a compressed index).
  const bool cold_tier = flags.GetBool("cold-tier", false);
  int64_t decode_mb = flags.GetInt("decode-cache-mb", cold_tier ? 64 : 0);
  if (decode_mb < 0 || decode_mb > (int64_t{1} << 20)) {
    std::fprintf(stderr, "error: --decode-cache-mb must be in [0, %lld]\n",
                 static_cast<long long>(int64_t{1} << 20));
    return 1;
  }
  if (cold_tier && decode_mb == 0) {
    std::fprintf(stderr,
                 "error: --cold-tier wants --decode-cache-mb > 0\n");
    return 1;
  }
  options.decode_cache_bytes =
      static_cast<size_t>(decode_mb) * 1024 * 1024;
  // --graph enables the kPath endpoint: reconstruction walks the edges, so
  // the graph is needed even when the snapshot carries §V parent quads.
  // Servers without it refuse kPath with kNotSupported.
  std::string serve_graph = flags.GetString("graph", "");
  if (!serve_graph.empty()) {
    auto graph = ReadEdgeListFile(serve_graph);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    options.graph =
        std::make_shared<const QualityGraph>(std::move(graph).value());
  }
  std::string impl = flags.GetString("impl", "merge");
  if (impl == "merge") {
    options.impl = QueryImpl::kMerge;
  } else if (impl == "scan") {
    options.impl = QueryImpl::kScan;
  } else if (impl == "grouped") {
    options.impl = QueryImpl::kHubGrouped;
  } else if (impl == "binary") {
    options.impl = QueryImpl::kBinary;
  } else {
    std::fprintf(stderr, "error: unknown --impl: %s\n", impl.c_str());
    return 1;
  }
  int64_t queries_flag = flags.GetInt("queries", 100000);
  int64_t levels = flags.GetInt("levels", 5);
  if (queries_flag < 0 || levels < 1) {
    std::fprintf(stderr,
                 "error: --queries must be >= 0 and --levels >= 1\n");
    return 1;
  }
  SnapshotLoadOptions load;
  load.verify_checksums = load.deep_validate = flags.GetBool("verify", false);
  std::string verify_level = flags.GetString("verify-level", "offsets");
  if (verify_level == "directory") {
    load.verify_level = SnapshotVerifyLevel::kDirectory;
  } else if (verify_level == "deep") {
    load.verify_level = SnapshotVerifyLevel::kDeep;
  } else if (verify_level != "offsets") {
    std::fprintf(stderr, "error: unknown --verify-level: %s\n",
                 verify_level.c_str());
    return 1;
  }

  // One full snapshot serves through QueryEngine; anything else (shard
  // files, label-only snapshots, manifests) goes through the sharded
  // engine. All are served through the QueryService surface the network
  // front end uses.
  bool single_full = false;
  if (manifest.empty()) {
    auto info = ReadSnapshotInfo(paths[0]);
    if (!info.ok()) {
      std::fprintf(stderr, "error: %s\n", info.status().ToString().c_str());
      return 1;
    }
    single_full = paths.size() == 1 && info.value().IsFullRange() &&
                  info.value().has_order;
  }

  DegradedOpenOptions degraded;
  degraded.quarantine_failed_shards = flags.GetBool("quarantine", false);
  // Kept alive for the whole serve: the engine holds a raw pointer to it.
  std::optional<QualityGraph> fallback_graph;
  std::string fallback_path = flags.GetString("fallback-graph", "");
  if (!fallback_path.empty()) {
    if (!degraded.quarantine_failed_shards) {
      std::fprintf(stderr,
                   "error: --fallback-graph requires --quarantine\n");
      return 1;
    }
    auto graph = ReadEdgeListFile(fallback_path);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    fallback_graph = std::move(graph).value();
    degraded.fallback_graph = &fallback_graph.value();
  }
  if (degraded.quarantine_failed_shards && manifest.empty()) {
    std::fprintf(stderr, "error: --quarantine requires --manifest\n");
    return 1;
  }

  const bool watch = flags.GetBool("watch", false);
  if (watch && !flags.Has("listen")) {
    std::fprintf(stderr, "error: --watch requires --listen\n");
    return 1;
  }
  // Under --watch, one cache outlives engine generations so small updates
  // keep the hot set warm; the engines bind their inserts to their own
  // fingerprint and the reload path owns invalidation.
  std::shared_ptr<ResultCache> shared_cache;
  if (watch && options.cache_bytes > 0) {
    shared_cache = std::make_shared<ResultCache>(options.cache_bytes);
    options.shared_cache = shared_cache;
  }

  Timer load_timer;
  auto opened =
      OpenServeService(paths, manifest, single_full, options, load, degraded);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  OpenedService current = std::move(opened).value();
  double load_seconds = load_timer.Seconds();
  if (current.n == 0) {
    std::fprintf(stderr, "error: empty snapshot\n");
    return 1;
  }
  std::printf("mapped %zu snapshot%s (%zu vertices) in %.3f ms\n",
              current.mapped_files, current.mapped_files == 1 ? "" : "s",
              current.n, load_seconds * 1e3);
  if (cold_tier && !current.compressed) {
    std::fprintf(stderr,
                 "error: --cold-tier wants a compressed snapshot (write one "
                 "with `snapshot --compress`)\n");
    return 1;
  }
  if (current.compressed) {
    std::printf("compressed labels%s, decode cache %lld MiB\n",
                cold_tier ? " (cold tier: blob stays on disk)" : "",
                static_cast<long long>(decode_mb));
  }
  if (current.quarantined > 0) {
    std::printf(
        "DEGRADED: %zu of %zu shards quarantined — queries touching their "
        "ranges are %s\n",
        current.quarantined, current.mapped_files,
        degraded.fallback_graph != nullptr
            ? "answered online via the fallback graph"
            : "refused with kShardUnavailable");
  }

  if (flags.Has("listen")) {
    if (!watch) {
      return RunWireServer(std::move(current.service), flags, current.n,
                           current.served_threads);
    }
    // No explicit Rebind here: the engine already bound the shared cache
    // to its fingerprint at open (the unconditional-Rebind contract).
    auto swappable =
        std::make_shared<SwappableQueryService>(current.service);
    const std::string watch_path = manifest.empty() ? paths[0] : manifest;
    const std::string delta_path = flags.GetString("delta", "");
    int64_t last_mtime = FileMtimeNs(watch_path);

    auto reload = [&]() {
      // Cache invalidation runs through the engine's pre-bind hook: it
      // fires after the new fingerprint is computed but BEFORE the new
      // engine's unconditional Rebind, while no queries flow through the
      // new generation yet. A scoped InvalidateDelta there rebinds the
      // cache itself, turning the engine's Rebind into a no-op — the
      // surviving hot set is preserved instead of wholesale-wiped. When
      // the hook does nothing (no usable delta log), the engine's own
      // Rebind wipes, which is the correct wholesale ordering: new
      // identity stored before the sweep, swept before the swap.
      QueryEngineOptions next_options = options;
      if (shared_cache) {
        next_options.pre_bind_invalidate = [&](uint64_t next_fingerprint) {
          // Scoped invalidation needs a delta log authored against exactly
          // the outgoing snapshot.
          if (delta_path.empty() ||
              next_fingerprint == current.cache_fingerprint) {
            return;
          }
          auto log = ReadDeltaLog(delta_path);
          if (!log.ok() || log.value().base_fingerprint == 0 ||
              log.value().base_fingerprint != current.cache_fingerprint) {
            return;
          }
          std::vector<DeltaImpact> impacts = DeltaImpacts(log.value());
          ResultCache::CoupledFn coupled;
          if (current.engine != nullptr) {
            // Pair (s, t) can only be affected if it reaches the changed
            // edge from both sides in the OLD index at the lowest
            // affected constraint (probed uncached: this runs under the
            // cache's shard mutexes).
            auto old_engine = current.engine;
            coupled = [old_engine](Vertex s, Vertex t,
                                   const DeltaImpact& impact,
                                   Quality w_test) {
              const WcIndex& index = old_engine->index();
              return (index.Query(s, impact.u, w_test) != kInfDistance &&
                      index.Query(impact.v, t, w_test) != kInfDistance) ||
                     (index.Query(s, impact.v, w_test) != kInfDistance &&
                      index.Query(impact.u, t, w_test) != kInfDistance);
            };
          }
          size_t dropped = shared_cache->InvalidateDelta(next_fingerprint,
                                                         impacts, coupled);
          std::printf("cache: delta-scoped invalidation dropped %zu "
                      "interval%s\n",
                      dropped, dropped == 1 ? "" : "s");
        };
      }
      auto reopened = OpenServeService(paths, manifest, single_full,
                                       next_options, load, degraded);
      if (!reopened.ok()) {
        // Keep serving the old generation; the operator sees why.
        std::fprintf(stderr, "reload failed (still serving generation %llu): %s\n",
                     static_cast<unsigned long long>(swappable->generation()),
                     reopened.status().ToString().c_str());
        return;
      }
      OpenedService next = std::move(reopened).value();
      uint64_t generation = swappable->Swap(next.service);
      current = std::move(next);
      std::printf("reloaded %s: %zu vertices, now serving generation %llu\n",
                  watch_path.c_str(), current.n,
                  static_cast<unsigned long long>(generation));
      std::fflush(stdout);
    };
    auto on_tick = [&]() {
      bool want = false;
      if (g_reload_requested != 0) {
        g_reload_requested = 0;
        want = true;
      }
      int64_t mtime = FileMtimeNs(watch_path);
      if (mtime != last_mtime) {
        last_mtime = mtime;
        want = true;
      }
      if (want) reload();
    };
    std::signal(SIGHUP, HandleReloadSignal);
    return RunWireServer(swappable, flags, current.n, current.served_threads,
                         on_tick);
  }

  size_t queries = static_cast<size_t>(queries_flag);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Rng rng(seed);
  std::vector<BatchQueryInput> workload;
  workload.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    workload.push_back({static_cast<Vertex>(rng.NextBounded(current.n)),
                        static_cast<Vertex>(rng.NextBounded(current.n)),
                        static_cast<Quality>(rng.NextInRange(1, levels))});
  }
  Timer batch_timer;
  size_t reachable = 0;
  std::vector<Distance> answers = current.service->Batch(workload);
  double serve_seconds = batch_timer.Seconds();
  for (Distance d : answers) {
    if (d != kInfDistance) ++reachable;
  }
  // The answers CRC is the backend-equivalence witness: the same --seed
  // yields the same workload, so flat, compressed, cold-tier, and sharded
  // serving of the same index must all print the same value.
  uint32_t answers_crc =
      Crc32c(answers.data(), answers.size() * sizeof(Distance));
  std::printf(
      "served %zu queries on %zu thread%s in %.3f s (%.0f q/s), "
      "%zu reachable, answers crc32c=%08x\n",
      workload.size(), current.served_threads,
      current.served_threads == 1 ? "" : "s",
      serve_seconds,
      serve_seconds > 0 ? static_cast<double>(workload.size()) / serve_seconds
                        : 0.0,
      reachable, answers_crc);
  if (options.cache_bytes > 0) {
    QueryEngineStats stats = current.service->Stats();
    uint64_t lookups = stats.cache_hits + stats.cache_misses;
    std::printf(
        "cache: %llu hits / %llu lookups (%.1f%%), %llu inserts, "
        "%llu evictions\n",
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(lookups),
        lookups > 0 ? 100.0 * static_cast<double>(stats.cache_hits) /
                          static_cast<double>(lookups)
                    : 0.0,
        static_cast<unsigned long long>(stats.cache_inserts),
        static_cast<unsigned long long>(stats.cache_evictions));
  }
  if (options.decode_cache_bytes > 0 && current.compressed) {
    QueryEngineStats stats = current.service->Stats();
    uint64_t decodes = stats.decode_hits + stats.decode_misses;
    std::printf(
        "decode cache: %llu hits / %llu lookups (%.1f%%), %llu cold "
        "page-ins; labels %.2f MiB vs %.2f MiB flat (%.2fx)\n",
        static_cast<unsigned long long>(stats.decode_hits),
        static_cast<unsigned long long>(decodes),
        decodes > 0 ? 100.0 * static_cast<double>(stats.decode_hits) /
                          static_cast<double>(decodes)
                    : 0.0,
        static_cast<unsigned long long>(stats.cold_pageins),
        static_cast<double>(stats.label_bytes) / (1024.0 * 1024.0),
        static_cast<double>(stats.uncompressed_label_bytes) /
            (1024.0 * 1024.0),
        stats.label_bytes > 0
            ? static_cast<double>(stats.uncompressed_label_bytes) /
                  static_cast<double>(stats.label_bytes)
            : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace wcsd

int main(int argc, char** argv) {
  using namespace wcsd;
  if (argc < 2) return Usage();
  Flags flags(argc, argv);
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "build") == 0) return CmdBuild(flags);
  if (std::strcmp(cmd, "query") == 0) return CmdQuery(flags);
  if (std::strcmp(cmd, "stats") == 0) return CmdStats(flags);
  if (std::strcmp(cmd, "verify") == 0) return CmdVerify(flags);
  if (std::strcmp(cmd, "generate") == 0) return CmdGenerate(flags);
  if (std::strcmp(cmd, "snapshot") == 0) return CmdSnapshot(flags);
  if (std::strcmp(cmd, "shard") == 0) return CmdShard(flags);
  if (std::strcmp(cmd, "serve") == 0) return CmdServe(flags);
  if (std::strcmp(cmd, "delta") == 0) return CmdDelta(flags);
  if (std::strcmp(cmd, "update") == 0) return CmdUpdate(flags);
  return Usage();
}
