// Closed-loop load generator for the network front end: an in-process
// WcServer over an mmap'd snapshot, hammered by N client connections, each
// running its own closed loop (send, wait, repeat — the throughput shape a
// fleet of synchronous callers produces). Two frame shapes per connection
// count:
//   * pipelined — single-query frames with a 64-deep window in flight,
//   * batch     — kBatchQuery frames of 512 queries.
// Emits BENCH_net_serve.json next to the console table so the serving
// throughput trajectory is tracked across PRs like the micro benches.
//
// A second sweep varies the server's reactor count (per-core serving:
// SO_REUSEPORT epoll loops, each owning its connections end-to-end) at a
// fixed connection count, with a single-threaded engine so queries run
// inline on the reactor threads — the per-core configuration `serve
// --reactors N` uses. Per-reactor frame counters land in the JSON so CI
// can check the kernel actually spread the load.
//
// Flags: --conns=1,2,4,8  connection counts to sweep
//        --rounds=3       passes over the workload per connection
//        --queries=8192   workload size per connection pass
//        --threads=0      engine worker threads (0 = hardware)
//        --scale=0.25     social dataset scale (EU family)
//        --reactors=1,2,4 reactor counts to sweep
//        --reactor-conns=8  connections driving the reactor sweep

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/datasets.h"
#include "bench/harness.h"
#include "bench/workload.h"
#include "core/wc_index.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/query_engine.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"

namespace wcsd {
namespace {

std::vector<size_t> ParseConnList(const std::string& list) {
  std::vector<size_t> conns;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t comma = list.find(',', begin);
    if (comma == std::string::npos) comma = list.size();
    if (comma > begin) {
      long v = std::strtol(list.substr(begin, comma - begin).c_str(),
                           nullptr, 10);
      if (v > 0) conns.push_back(static_cast<size_t>(v));
    }
    begin = comma + 1;
  }
  return conns;
}

struct LoadResult {
  double seconds = 0;
  size_t queries = 0;
  size_t errors = 0;
};

/// Runs `conns` closed-loop clients against the server and returns the
/// aggregate wall time and query count. `batch_frames` picks the frame
/// shape.
LoadResult RunLoad(uint16_t port, size_t conns, size_t rounds,
                   const std::vector<BatchQueryInput>& workload,
                   bool batch_frames) {
  constexpr size_t kBatchFrame = 512;
  std::vector<std::thread> threads;
  std::vector<LoadResult> per_conn(conns);
  Timer wall;
  for (size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = WcClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        per_conn[c].errors++;
        return;
      }
      for (size_t round = 0; round < rounds; ++round) {
        if (batch_frames) {
          for (size_t at = 0; at < workload.size(); at += kBatchFrame) {
            size_t end = std::min(workload.size(), at + kBatchFrame);
            std::vector<BatchQueryInput> frame(workload.begin() + at,
                                               workload.begin() + end);
            auto result = client.value().Batch(frame);
            if (!result.ok()) {
              per_conn[c].errors++;
              return;
            }
            per_conn[c].queries += frame.size();
          }
        } else {
          auto result = client.value().QueryPipelined(workload, 64);
          if (!result.ok()) {
            per_conn[c].errors++;
            return;
          }
          per_conn[c].queries += workload.size();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult total;
  total.seconds = wall.Seconds();
  for (const LoadResult& r : per_conn) {
    total.queries += r.queries;
    total.errors += r.errors;
  }
  return total;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<size_t> conns = ParseConnList(flags.GetString("conns",
                                                            "1,2,4,8"));
  size_t rounds = static_cast<size_t>(flags.GetInt("rounds", 3));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 8192));
  double scale = flags.GetDouble("scale", 0.25);

  Dataset dataset = MakeSocialDataset("EU", scale);
  WcIndex index = WcIndex::Build(dataset.graph, WcIndexOptions::Plus());
  index.Finalize();
  std::string snap = "/tmp/bench_net_serve.wcsnap";
  if (!index.SaveSnapshot(snap).ok()) {
    std::fprintf(stderr, "snapshot write failed\n");
    return 1;
  }

  QueryEngineOptions options;
  options.num_threads = static_cast<size_t>(flags.GetInt("threads", 0));
  auto engine = QueryEngine::Open(snap, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  auto shared =
      std::make_shared<const QueryEngine>(std::move(engine).value());
  auto server = WcServer::Start(MakeQueryService(shared));
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  std::vector<BatchQueryInput> workload;
  workload.reserve(num_queries);
  Rng rng(7);
  const size_t n = shared->index().NumVertices();
  for (size_t i = 0; i < num_queries; ++i) {
    workload.push_back(
        {static_cast<Vertex>(rng.NextBounded(n)),
         static_cast<Vertex>(rng.NextBounded(n)),
         static_cast<Quality>(rng.NextInRange(1, dataset.num_qualities))});
  }

  std::printf("net serve: %zu vertices, %zu entries, %zu engine threads\n",
              n, shared->index().TotalEntries(), shared->num_threads());
  TablePrinter table("network serving throughput",
                     {"mode", "conns", "queries", "q/s", "us/query"},
                     {10, 6, 9, 12, 9});
  BenchJsonWriter writer("net_serve");
  for (bool batch_frames : {false, true}) {
    const char* mode = batch_frames ? "batch" : "pipelined";
    for (size_t c : conns) {
      LoadResult result =
          RunLoad(server.value().port(), c, rounds, workload, batch_frames);
      if (result.errors > 0 || result.queries == 0) {
        std::fprintf(stderr, "load run failed (mode=%s conns=%zu)\n", mode,
                     c);
        return 1;
      }
      double qps = static_cast<double>(result.queries) / result.seconds;
      double us = result.seconds * 1e6 /
                  static_cast<double>(result.queries);
      char qps_cell[32], us_cell[32];
      std::snprintf(qps_cell, sizeof(qps_cell), "%.0f", qps);
      std::snprintf(us_cell, sizeof(us_cell), "%.2f", us);
      table.Row({mode, std::to_string(c), std::to_string(result.queries),
                 qps_cell, us_cell});
      BenchRecord record;
      record.name = std::string("BM_NetServe/mode:") + mode +
                    "/conns:" + std::to_string(c);
      record.median_ns = result.seconds * 1e9 /
                         static_cast<double>(result.queries);
      record.threads = c;
      record.backend = "flat";
      writer.Record(std::move(record));
    }
  }
  server.value().Stop();

  // Reactor-scaling sweep: per-core configuration (engine threads = 1, the
  // reactors are the parallelism), fresh server per reactor count.
  std::vector<size_t> reactor_counts =
      ParseConnList(flags.GetString("reactors", "1,2,4"));
  size_t reactor_conns =
      static_cast<size_t>(flags.GetInt("reactor-conns", 8));
  QueryEngineOptions percore_options;
  percore_options.num_threads = 1;
  auto percore_engine = QueryEngine::Open(snap, percore_options);
  if (!percore_engine.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 percore_engine.status().ToString().c_str());
    return 1;
  }
  auto percore = std::make_shared<const QueryEngine>(
      std::move(percore_engine).value());
  TablePrinter reactor_table(
      "reactor scaling (per-core: 1 engine thread per reactor)",
      {"mode", "reactors", "conns", "q/s", "active"}, {10, 8, 6, 12, 6});
  for (bool batch_frames : {false, true}) {
    const char* mode = batch_frames ? "batch" : "pipelined";
    for (size_t r : reactor_counts) {
      WcServerOptions server_options;
      server_options.num_reactors = r;
      auto rserver =
          WcServer::Start(MakeQueryService(percore), server_options);
      if (!rserver.ok()) {
        std::fprintf(stderr, "server start failed (reactors=%zu): %s\n", r,
                     rserver.status().ToString().c_str());
        return 1;
      }
      LoadResult result = RunLoad(rserver.value().port(), reactor_conns,
                                  rounds, workload, batch_frames);
      if (result.errors > 0 || result.queries == 0) {
        std::fprintf(stderr, "load run failed (mode=%s reactors=%zu)\n",
                     mode, r);
        return 1;
      }
      std::vector<WcReactorStats> per_reactor =
          rserver.value().reactor_stats();
      rserver.value().Stop();
      size_t active = 0;
      for (const WcReactorStats& stats : per_reactor) {
        if (stats.frames_served > 0) ++active;
      }
      double qps = static_cast<double>(result.queries) / result.seconds;
      char qps_cell[32];
      std::snprintf(qps_cell, sizeof(qps_cell), "%.0f", qps);
      reactor_table.Row({mode, std::to_string(r),
                         std::to_string(reactor_conns), qps_cell,
                         std::to_string(active)});
      BenchRecord record;
      record.name = std::string("BM_NetServeReactors/mode:") + mode +
                    "/reactors:" + std::to_string(r);
      record.median_ns =
          result.seconds * 1e9 / static_cast<double>(result.queries);
      record.threads = r;
      record.backend = "flat";
      record.counters.emplace_back("reactors",
                                   static_cast<double>(per_reactor.size()));
      record.counters.emplace_back("active_reactors",
                                   static_cast<double>(active));
      for (size_t i = 0; i < per_reactor.size(); ++i) {
        record.counters.emplace_back(
            "reactor" + std::to_string(i) + "_frames",
            static_cast<double>(per_reactor[i].frames_served));
        record.counters.emplace_back(
            "reactor" + std::to_string(i) + "_conns",
            static_cast<double>(per_reactor[i].connections_accepted));
      }
      writer.Record(std::move(record));
    }
  }

  std::remove(snap.c_str());
  std::string path;
  Status st = writer.WriteFile(&path);
  if (!st.ok()) {
    std::fprintf(stderr, "BENCH json: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", path.c_str(),
              writer.records().size());
  return 0;
}

}  // namespace
}  // namespace wcsd

int main(int argc, char** argv) { return wcsd::Run(argc, argv); }
