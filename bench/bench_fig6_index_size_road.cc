// Figure 6 reproduction: index size (GB) on the road-network family.
//
// Paper shape to reproduce: Naïve is the largest everywhere (one 2-hop
// index per distinct quality) and exceeds memory on the largest datasets;
// WC-INDEX and WC-INDEX+ have identical size when built with the same
// vertex order — the query-efficient construction only affects time.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Figure 6: Indexing Size (GB) for road networks", config,
                "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table(
      "Index size (GB)",
      {"dataset", "|V|", "Naive", "WC-INDEX", "WC-INDEX+", "WC==WC+"},
      {9, 10, 12, 12, 12, 9});
  for (const std::string& name : RoadDatasetNames()) {
    Dataset d = MakeRoadDataset(name, config.scale);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    // Same-order comparison (paper §VI Exp 2): both on the degree order,
    // toggling only the query-efficient construction.
    WcIndexOptions basic = WcIndexOptions::Basic();
    WcIndexOptions fast = WcIndexOptions::Basic();
    fast.query_efficient = true;
    fast.further_pruning = true;
    BuildOutcome wc = BuildWc(d.graph, basic);
    BuildOutcome wc_plus = BuildWc(d.graph, fast);
    table.Row({name, std::to_string(d.graph.NumVertices()),
               naive.failed ? InfCell() : FormatGb(naive.bytes),
               FormatGb(wc.bytes), FormatGb(wc_plus.bytes),
               wc.bytes == wc_plus.bytes ? "yes" : "NO"});
  }
  return 0;
}
