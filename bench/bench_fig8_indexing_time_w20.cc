// Figure 8 reproduction: indexing time (s) with |w| = 20 distinct quality
// values on the six smaller road datasets (NY ... EST).
//
// Paper shape to reproduce: with a large |w|, Naïve pays for 20 separate
// indexes; WC-INDEX+ remains the fastest.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  // Larger default budget: in the paper's Figure 8/9 Naïve builds on all
  // six datasets (INF appears only on the larger WST/CTR, not shown here).
  BenchConfig config = BenchConfig::FromFlags(argc, argv,
                                              /*default_budget_mb=*/256);
  PrintPreamble("Figure 8: Indexing time (s) for road networks, |w| = 20",
                config, "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table("Indexing time (s), |w|=20",
                     {"dataset", "|V|", "Naive", "WC-INDEX", "WC-INDEX+"},
                     {9, 10, 12, 12, 12});
  for (const std::string& name :
       {std::string("NY"), std::string("BAY"), std::string("COL"),
        std::string("FLA"), std::string("CAL"), std::string("EST")}) {
    Dataset d = MakeRoadDataset(name, config.scale, /*num_qualities=*/20);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    BuildOutcome basic = BuildWc(d.graph, WcIndexOptions::Basic());
    BuildOutcome plus = BuildWc(d.graph, WcIndexOptions::Plus());
    table.Row({name, std::to_string(d.graph.NumVertices()),
               naive.failed ? InfCell() : FormatSeconds(naive.seconds),
               FormatSeconds(basic.seconds), FormatSeconds(plus.seconds)});
  }
  return 0;
}
