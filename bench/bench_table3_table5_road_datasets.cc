// Tables III + V reproduction: road-network statistics (|V|, |E|) and the
// memory required to store each network (the paper's Table V in GB).
//
// The synthetic family mirrors the paper's relative size progression at
// ~1/40 scale (DESIGN.md §3.1).

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Tables III + V: road-network summary and storage size",
                config, "");

  TablePrinter table("Road networks",
                     {"dataset", "|V(G)|", "|E(G)|", "|w|", "avg-deg",
                      "size(GB)"},
                     {9, 12, 12, 5, 9, 10});
  for (const std::string& name : RoadDatasetNames()) {
    Dataset d = MakeRoadDataset(name, config.scale);
    char avg[16];
    std::snprintf(avg, sizeof(avg), "%.2f",
                  2.0 * static_cast<double>(d.graph.NumEdges()) /
                      static_cast<double>(d.graph.NumVertices()));
    table.Row({name, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               std::to_string(d.num_qualities), avg,
               FormatGb(d.graph.MemoryBytes())});
  }
  return 0;
}
