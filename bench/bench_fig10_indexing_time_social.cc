// Figure 10 reproduction: indexing time (s) on the social-network family
// (scale-free graphs, |w| from Table IV).
//
// Paper shape to reproduce: WC-INDEX+ fastest; indexing costs exceed road
// networks of comparable size because of the higher average degree.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Figure 10: Indexing Time (s) for social networks", config,
                "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table("Indexing time (s)",
                     {"dataset", "|V|", "|E|", "|w|", "Naive", "WC-INDEX",
                      "WC-INDEX+"},
                     {9, 10, 10, 5, 12, 12, 12});
  for (const std::string& name : SocialDatasetNames()) {
    Dataset d = MakeSocialDataset(name, config.scale);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    BuildOutcome basic = BuildWc(d.graph, WcIndexOptions::Basic());
    BuildOutcome plus = BuildWc(d.graph, WcIndexOptions::Plus());
    table.Row({name, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               std::to_string(d.num_qualities),
               naive.failed ? InfCell() : FormatSeconds(naive.seconds),
               FormatSeconds(basic.seconds), FormatSeconds(plus.seconds)});
  }
  return 0;
}
