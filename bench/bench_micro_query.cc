// Google-benchmark microbenchmarks for the query paths: per-query latency
// of each implementation on both label backends (vector-of-vectors vs.
// flat CSR), plus the baselines, on a mid-size social graph. Emits
// BENCH_micro_query.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/datasets.h"
#include "bench/workload.h"
#include "core/batch.h"
#include "core/wc_index.h"
#include "labeling/naive_index.h"
#include "search/wc_bfs.h"

namespace wcsd {
namespace {

// Shared fixtures, built once.
const Dataset& SocialDataset() {
  static const Dataset d = MakeSocialDataset("EU", 0.25);
  return d;
}

const WcIndex& SharedIndex() {
  static const WcIndex index =
      WcIndex::Build(SocialDataset().graph, WcIndexOptions::Plus());
  return index;
}

const WcIndex& SharedFlatIndex() {
  static const WcIndex index = [] {
    WcIndex built = SharedIndex();  // copy: both backends serve one index
    built.Finalize();
    return built;
  }();
  return index;
}

const WcIndex& IndexForBackend(int backend) {
  return backend == 1 ? SharedFlatIndex() : SharedIndex();
}

const std::vector<WcsdQuery>& SharedWorkload() {
  static const std::vector<WcsdQuery> workload =
      MakeQueryWorkload(SocialDataset().graph, 4096, 7);
  return workload;
}

void BM_QueryImpl(benchmark::State& state) {
  const WcIndex& index = IndexForBackend(static_cast<int>(state.range(1)));
  const auto& workload = SharedWorkload();
  QueryImpl impl = static_cast<QueryImpl>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    const WcsdQuery& q = workload[i++ & 4095];
    benchmark::DoNotOptimize(index.Query(q.s, q.t, q.w, impl));
  }
}
BENCHMARK(BM_QueryImpl)
    ->ArgsProduct({{static_cast<int>(QueryImpl::kScan),
                    static_cast<int>(QueryImpl::kHubGrouped),
                    static_cast<int>(QueryImpl::kBinary),
                    static_cast<int>(QueryImpl::kMerge)},
                   {0, 1}})
    ->ArgNames({"impl", "backend"});

void BM_QueryWithHub(benchmark::State& state) {
  const WcIndex& index = IndexForBackend(static_cast<int>(state.range(0)));
  const auto& workload = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    const WcsdQuery& q = workload[i++ & 4095];
    benchmark::DoNotOptimize(index.QueryWithHub(q.s, q.t, q.w));
  }
}
BENCHMARK(BM_QueryWithHub)->Arg(0)->Arg(1)->ArgNames({"backend"});

void BM_NaiveQuery(benchmark::State& state) {
  static const auto naive = NaiveWcsdIndex::Build(SocialDataset().graph);
  const auto& workload = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    const WcsdQuery& q = workload[i++ & 4095];
    benchmark::DoNotOptimize(naive.value().Query(q.s, q.t, q.w));
  }
}
BENCHMARK(BM_NaiveQuery);

void BM_ConstrainedBfs(benchmark::State& state) {
  static WcBfs bfs(&SocialDataset().graph);
  const auto& workload = SharedWorkload();
  size_t i = 0;
  for (auto _ : state) {
    const WcsdQuery& q = workload[i++ & 4095];
    benchmark::DoNotOptimize(bfs.Query(q.s, q.t, q.w));
  }
}
BENCHMARK(BM_ConstrainedBfs);

void BM_BatchQueryThroughput(benchmark::State& state) {
  const WcIndex& index = IndexForBackend(static_cast<int>(state.range(1)));
  const auto& workload = SharedWorkload();
  std::vector<BatchQueryInput> batch;
  batch.reserve(workload.size());
  for (const WcsdQuery& q : workload) batch.push_back({q.s, q.t, q.w});
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchQuery(index, batch, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_BatchQueryThroughput)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->ArgNames({"threads", "backend"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcsd

WCSD_BENCH_JSON_MAIN("micro_query")
