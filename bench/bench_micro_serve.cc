// Google-benchmark microbenchmarks for the serving subsystem: snapshot
// mmap-load latency vs the full deserializing Load — at two index sizes,
// to show mmap load time is independent of label count — plus QueryEngine
// batch throughput at 1/2/4/8 threads, the sharded engine over even and
// label-mass-planned shard sets (with the planned-vs-even byte skew as
// counters), per-shard query throughput over the planned set, and the
// compressed-backend latency-penalty sweep across decode-cache budgets.
// Emits BENCH_micro_serve.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "bench/datasets.h"
#include "bench/workload.h"
#include "core/batch.h"
#include "core/dynamic_wc_index.h"
#include "core/path_index.h"
#include "core/wc_index.h"
#include "labeling/delta.h"
#include "labeling/shard_manifest.h"
#include "labeling/shard_plan.h"
#include "labeling/snapshot.h"
#include "net/server.h"
#include "net/swap_service.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "util/random.h"

namespace wcsd {
namespace {

constexpr int kBenchShards = 4;

// Two sizes of the same social family; "size:1" has ~4x the label entries
// of "size:0". Files are written once into /tmp and reused.
struct ServeFixture {
  std::string wcx_path;
  std::string snap_path;
  std::string csnap_path;  // same labels, v3 compressed sections
  std::vector<std::string> shard_paths;  // even vertex-range shards
  std::string manifest_path;             // label-mass-planned shard set
  ShardPlan plan;                        // the planned tiling
  double planned_skew = 0.0;             // max/mean bytes, planned split
  double even_skew = 0.0;                // max/mean bytes, even split
  size_t num_vertices = 0;
  size_t total_entries = 0;
};

const ServeFixture& FixtureForSize(int size) {
  static const std::array<ServeFixture, 2> fixtures = [] {
    std::array<ServeFixture, 2> out;
    const double scales[2] = {0.12, 0.25};
    for (int i = 0; i < 2; ++i) {
      Dataset d = MakeSocialDataset("EU", scales[i]);
      WcIndex index = WcIndex::Build(d.graph, WcIndexOptions::Plus());
      index.Finalize();
      ServeFixture f;
      f.num_vertices = index.NumVertices();
      f.total_entries = index.TotalEntries();
      std::string stem = "/tmp/bench_serve_" + std::to_string(i);
      f.wcx_path = stem + ".wcx";
      f.snap_path = stem + ".wcsnap";
      f.csnap_path = stem + "_c.wcsnap";
      SnapshotWriteOptions compress_options;
      compress_options.compress = true;
      if (!index.Save(f.wcx_path).ok() ||
          !index.SaveSnapshot(f.snap_path).ok() ||
          !index.SaveSnapshot(f.csnap_path, compress_options).ok()) {
        std::fprintf(stderr, "bench fixture write failed\n");
        std::abort();
      }
      for (int k = 0; k < kBenchShards; ++k) {
        std::string path = stem + ".shard" + std::to_string(k);
        uint64_t n = f.num_vertices;
        if (!WriteSnapshotShard(path, index.flat_labels(),
                                n * k / kBenchShards,
                                n * (k + 1) / kBenchShards, n)
                 .ok()) {
          std::fprintf(stderr, "bench shard write failed\n");
          std::abort();
        }
        f.shard_paths.push_back(path);
      }
      ShardPlanOptions plan_options;
      plan_options.num_shards = kBenchShards;
      auto planned = PlanShards(index.flat_labels(), plan_options);
      plan_options.even_vertex = true;
      auto even = PlanShards(index.flat_labels(), plan_options);
      if (!planned.ok() || !even.ok()) {
        std::fprintf(stderr, "bench shard planning failed\n");
        std::abort();
      }
      f.plan = planned.value();
      f.planned_skew = planned.value().ByteSkew();
      f.even_skew = even.value().ByteSkew();
      auto written = WriteShardSet(stem + "_planned", index.flat_labels(),
                                   planned.value());
      if (!written.ok()) {
        std::fprintf(stderr, "bench shard-set write failed\n");
        std::abort();
      }
      f.manifest_path = written.value().manifest_path;
      out[i] = std::move(f);
    }
    return out;
  }();
  return fixtures[static_cast<size_t>(size)];
}

const std::vector<BatchQueryInput>& ServeWorkload() {
  static const std::vector<BatchQueryInput> workload = [] {
    Dataset d = MakeSocialDataset("EU", 0.25);
    std::vector<BatchQueryInput> out;
    for (const WcsdQuery& q : MakeQueryWorkload(d.graph, 8192, 7)) {
      out.push_back({q.s, q.t, q.w});
    }
    return out;
  }();
  return workload;
}

// Full deserializing load: scales with label count.
void BM_LoadFull(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto loaded = WcIndex::Load(f.wcx_path);
    if (!loaded.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(loaded.value().TotalEntries());
  }
  state.counters["entries"] = static_cast<double>(f.total_entries);
}
BENCHMARK(BM_LoadFull)->Arg(0)->Arg(1)->ArgNames({"size"})
    ->Unit(benchmark::kMicrosecond);

// Zero-copy mmap load: header + O(vertices) validation only. Comparing
// size:0 to size:1 against BM_LoadFull shows the label-count independence.
void BM_LoadMmap(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto loaded = WcIndex::LoadMmap(f.snap_path);
    if (!loaded.ok()) state.SkipWithError("mmap load failed");
    benchmark::DoNotOptimize(loaded.value().finalized());
  }
  state.counters["entries"] = static_cast<double>(f.total_entries);
}
BENCHMARK(BM_LoadMmap)->Arg(0)->Arg(1)->ArgNames({"size"})
    ->Unit(benchmark::kMicrosecond);

// Batch throughput through the engine at 1/2/4/8 threads, serving the
// mmap-loaded snapshot.
void BM_ServeBatchThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  QueryEngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  static std::unique_ptr<QueryEngine> engine;
  static size_t engine_threads = 0;
  if (!engine || engine_threads != options.num_threads) {
    auto opened = QueryEngine::Open(f.snap_path, options);
    if (!opened.ok()) {
      state.SkipWithError("engine open failed");
      return;
    }
    engine = std::make_unique<QueryEngine>(std::move(opened).value());
    engine_threads = options.num_threads;
  }
  const auto& workload = ServeWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_ServeBatchThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same workload through four vertex-range shards.
void BM_ShardedBatchThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  QueryEngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  static std::unique_ptr<ShardedQueryEngine> engine;
  static size_t engine_threads = 0;
  if (!engine || engine_threads != options.num_threads) {
    auto opened = ShardedQueryEngine::OpenMmap(f.shard_paths, options);
    if (!opened.ok()) {
      state.SkipWithError("sharded open failed");
      return;
    }
    engine =
        std::make_unique<ShardedQueryEngine>(std::move(opened).value());
    engine_threads = options.num_threads;
  }
  const auto& workload = ServeWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_ShardedBatchThroughput)
    ->Arg(1)->Arg(4)
    ->ArgNames({"threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Label-mass-balanced shard planning over the hub-heavy social index.
// The planned-vs-even byte skew (max/mean shard bytes; 1.0 = perfect)
// lands in BENCH_micro_serve.json as counters.
void BM_ShardPlan(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  auto loaded = WcIndex::LoadMmap(f.snap_path);
  if (!loaded.ok()) {
    state.SkipWithError("mmap load failed");
    return;
  }
  ShardPlanOptions options;
  options.num_shards = kBenchShards;
  for (auto _ : state) {
    auto plan = PlanShards(loaded.value().flat_labels(), options);
    if (!plan.ok()) {
      state.SkipWithError("planning failed");
      return;
    }
    benchmark::DoNotOptimize(plan.value().total_bytes);
  }
  state.counters["planned_skew"] = f.planned_skew;
  state.counters["even_skew"] = f.even_skew;
  state.counters["shards"] = kBenchShards;
}
BENCHMARK(BM_ShardPlan)->Unit(benchmark::kMicrosecond);

// Opening a whole shard set through its manifest (parse + map + header
// cross-checks; no payload reads).
void BM_ManifestOpen(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  QueryEngineOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    auto engine = ShardedQueryEngine::OpenManifest(f.manifest_path, options);
    if (!engine.ok()) {
      state.SkipWithError("manifest open failed");
      return;
    }
    benchmark::DoNotOptimize(engine.value().NumVertices());
  }
  state.counters["shards"] = kBenchShards;
}
BENCHMARK(BM_ManifestOpen)->Unit(benchmark::kMicrosecond);

// The mixed workload through the planned (label-mass-balanced) shard set;
// compare against BM_ShardedBatchThroughput's even split.
void BM_PlannedShardedBatchThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  QueryEngineOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  static std::unique_ptr<ShardedQueryEngine> engine;
  static size_t engine_threads = 0;
  if (!engine || engine_threads != options.num_threads) {
    auto opened = ShardedQueryEngine::OpenManifest(f.manifest_path, options);
    if (!opened.ok()) {
      state.SkipWithError("manifest open failed");
      return;
    }
    engine =
        std::make_unique<ShardedQueryEngine>(std::move(opened).value());
    engine_threads = options.num_threads;
  }
  const auto& workload = ServeWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
  state.counters["planned_skew"] = f.planned_skew;
}
BENCHMARK(BM_PlannedShardedBatchThroughput)
    ->Arg(1)->Arg(4)
    ->ArgNames({"threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Per-shard query throughput over the planned set: both endpoints of every
// query land inside shard k, so the run measures one shard's locality.
// With mass-balanced shards these runs should look alike; shard_bytes
// records each shard's label mass alongside.
void BM_ShardLocalThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  const int shard = static_cast<int>(state.range(0));
  QueryEngineOptions options;
  options.num_threads = 1;
  static std::unique_ptr<ShardedQueryEngine> engine;
  if (!engine) {
    auto opened = ShardedQueryEngine::OpenManifest(f.manifest_path, options);
    if (!opened.ok()) {
      state.SkipWithError("manifest open failed");
      return;
    }
    engine =
        std::make_unique<ShardedQueryEngine>(std::move(opened).value());
  }
  if (static_cast<size_t>(shard) >= f.plan.shards.size()) {
    state.SkipWithError("shard index out of range");
    return;
  }
  const PlannedShard& range = f.plan.shards[static_cast<size_t>(shard)];
  std::vector<BatchQueryInput> workload;
  Rng rng(0x5eedu + static_cast<uint64_t>(shard));
  const uint64_t span = range.num_vertices();
  for (size_t i = 0; i < 8192; ++i) {
    workload.push_back(
        {static_cast<Vertex>(range.begin + rng.NextBounded(span)),
         static_cast<Vertex>(range.begin + rng.NextBounded(span)),
         static_cast<Quality>(rng.NextInRange(1, 7))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
  state.counters["shard_bytes"] = static_cast<double>(range.bytes);
}
BENCHMARK(BM_ShardLocalThroughput)
    ->DenseRange(0, kBenchShards - 1)
    ->ArgNames({"shard"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- compressed-backend benchmarks

// The latency penalty of serving delta/varint-compressed labels, swept
// across decode-cache budgets. compressed:0 is the flat-backend baseline;
// compressed:1 cache_mb:0 decodes every touched hub group per query (the
// worst case); growing budgets keep hot groups decoded and claw the
// penalty back. The engine is opened fresh per run so the
// compression_ratio / decode_cache_hit_rate / cold_pageins counters in
// BENCH_micro_serve.json describe exactly the timed workload (the tier-1
// bench-smoke asserts their presence and sanity).
void BM_CompressedServeThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  const bool compressed = state.range(0) != 0;
  const int cache_mb = static_cast<int>(state.range(1));
  QueryEngineOptions options;
  options.num_threads = 1;
  options.decode_cache_bytes = static_cast<size_t>(cache_mb) << 20;
  auto opened =
      QueryEngine::Open(compressed ? f.csnap_path : f.snap_path, options);
  if (!opened.ok()) {
    state.SkipWithError("engine open failed");
    return;
  }
  QueryEngine engine = std::move(opened).value();
  const auto& workload = ServeWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
  QueryEngineStats stats = engine.stats();
  state.counters["compression_ratio"] =
      stats.label_bytes > 0
          ? static_cast<double>(stats.uncompressed_label_bytes) /
                static_cast<double>(stats.label_bytes)
          : 1.0;
  const double decode_lookups =
      static_cast<double>(stats.decode_hits + stats.decode_misses);
  state.counters["decode_cache_hit_rate"] =
      decode_lookups > 0
          ? static_cast<double>(stats.decode_hits) / decode_lookups
          : 0.0;
  state.counters["cold_pageins"] = static_cast<double>(stats.cold_pageins);
}
BENCHMARK(BM_CompressedServeThroughput)
    // {compressed, decode cache MiB}: flat baseline, then the compressed
    // penalty sweep from uncached decode to a budget that holds the whole
    // working set.
    ->Args({0, 0})
    ->Args({1, 0})->Args({1, 1})->Args({1, 8})->Args({1, 64})
    ->ArgNames({"compressed", "cache_mb"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------- query-family benchmarks

// Top-k closest through the engine serving the mmap snapshot. The hoisted
// source-side scan is paid once per request, so cost scales with the
// candidate count, not k; the sweep shows both axes.
void BM_ServeTopKClosest(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t num_candidates = static_cast<size_t>(state.range(1));
  QueryEngineOptions options;
  options.num_threads = 1;
  static std::unique_ptr<QueryEngine> engine;
  if (!engine) {
    auto opened = QueryEngine::Open(f.snap_path, options);
    if (!opened.ok()) {
      state.SkipWithError("engine open failed");
      return;
    }
    engine = std::make_unique<QueryEngine>(std::move(opened).value());
  }
  Rng rng(0x70b7u);
  const size_t n = f.num_vertices;
  std::vector<Vertex> candidates;
  for (size_t i = 0; i < num_candidates; ++i) {
    candidates.push_back(static_cast<Vertex>(rng.NextBounded(n)));
  }
  std::vector<Vertex> sources;
  for (size_t i = 0; i < 64; ++i) {
    sources.push_back(static_cast<Vertex>(rng.NextBounded(n)));
  }
  size_t si = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->TopK(sources[si++ % sources.size()], candidates, 3.0f, k));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_candidates));
}
BENCHMARK(BM_ServeTopKClosest)
    ->Args({8, 64})->Args({8, 512})->Args({64, 512})
    ->ArgNames({"k", "candidates"})
    ->Unit(benchmark::kMicrosecond);

// Quality profile via the interval kernel: a dense threshold sweep costs
// one label merge per DISTINCT certified interval, so 64 thresholds
// should not cost ~10x what 6 do. merges_per_query lands as a counter.
void BM_QualityProfile(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  const size_t num_thresholds = static_cast<size_t>(state.range(0));
  static std::unique_ptr<WcIndex> index;
  if (!index) {
    auto loaded = WcIndex::LoadMmap(f.snap_path);
    if (!loaded.ok()) {
      state.SkipWithError("mmap load failed");
      return;
    }
    index = std::make_unique<WcIndex>(std::move(loaded).value());
  }
  std::vector<Quality> thresholds;
  for (size_t j = 0; j < num_thresholds; ++j) {
    thresholds.push_back(1.0f + 5.0f * static_cast<float>(j) /
                                    static_cast<float>(num_thresholds));
  }
  Rng rng(0x9f0f11eu);
  const size_t n = f.num_vertices;
  size_t merges = 0;
  size_t calls = 0;
  for (auto _ : state) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    size_t call_merges = 0;
    benchmark::DoNotOptimize(
        QualityProfile(*index, s, t, thresholds, &call_merges));
    merges += call_merges;
    ++calls;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(num_thresholds));
  state.counters["merges_per_query"] =
      calls > 0 ? static_cast<double>(merges) / static_cast<double>(calls)
                : 0.0;
}
BENCHMARK(BM_QualityProfile)
    ->Arg(6)->Arg(64)
    ->ArgNames({"thresholds"})
    ->Unit(benchmark::kMicrosecond);

// Constrained path reconstruction, with and without §V parent quads. The
// parent unwind is one table probe per hop; the fallback re-queries
// neighbors at every step. parent_steps / fallback_steps land as
// counters so the split is visible in BENCH_micro_serve.json.
void BM_ConstrainedPath(benchmark::State& state) {
  const bool with_parents = state.range(0) != 0;
  struct PathFixture {
    QualityGraph graph;
    WcIndex index;
  };
  static std::array<std::unique_ptr<PathFixture>, 2> fixtures;
  auto& fx = fixtures[with_parents ? 1 : 0];
  if (!fx) {
    Dataset d = MakeSocialDataset("EU", 0.12);
    WcIndexOptions options = WcIndexOptions::Plus();
    options.record_parents = with_parents;
    WcIndex built = WcIndex::Build(d.graph, options);
    built.Finalize();
    fx = std::make_unique<PathFixture>(
        PathFixture{std::move(d.graph), std::move(built)});
  }
  Rng rng(0xa7b5u);
  const size_t n = fx->graph.NumVertices();
  PathQueryStats stats;
  int64_t hops = 0;
  for (auto _ : state) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    auto path = QueryConstrainedPath(fx->index, fx->graph, s, t, 3.0f,
                                     &stats);
    hops += static_cast<int64_t>(path.empty() ? 0 : path.size() - 1);
    benchmark::DoNotOptimize(path);
  }
  state.SetItemsProcessed(hops);
  state.counters["parent_steps"] = static_cast<double>(stats.parent_steps);
  state.counters["fallback_steps"] =
      static_cast<double>(stats.fallback_steps);
}
BENCHMARK(BM_ConstrainedPath)
    ->Arg(0)->Arg(1)
    ->ArgNames({"parents"})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------- result-cache benchmarks

/// Zipf workloads keyed by (theta x100, vary_w), built once per config
/// from the same social graph the fixture indexes. vary_w=0 repeats a hot
/// pair at its one fixed constraint (exact-w repeats: any (s,t,w) memo
/// could serve them); vary_w=1 re-rolls the constraint per draw, so
/// repeats only hit through the dominance interval.
const std::vector<BatchQueryInput>& ZipfWorkload(int theta_x100,
                                                 bool vary_w) {
  static std::map<std::pair<int, bool>, std::vector<BatchQueryInput>> cache;
  auto key = std::make_pair(theta_x100, vary_w);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Dataset d = MakeSocialDataset("EU", 0.25);
    std::vector<BatchQueryInput> out;
    for (const WcsdQuery& q : MakeZipfQueryWorkload(
             d.graph, 8192, /*pool_size=*/2048, theta_x100 / 100.0, vary_w,
             0xcac4e + static_cast<uint64_t>(theta_x100))) {
      out.push_back({q.s, q.t, q.w});
    }
    it = cache.emplace(key, std::move(out)).first;
  }
  return it->second;
}

// The hit-rate sweep the README quotes: batch throughput over Zipf-skewed
// repeated-query workloads at several skews, uncached (cache:0) vs through
// the dominance-aware result cache (cache:1). The cache engine is opened
// fresh per run so hit_rate / cache_* counters in BENCH_micro_serve.json
// describe exactly the timed workload.
void BM_ZipfServeThroughput(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(1);
  const int theta_x100 = static_cast<int>(state.range(0));
  const bool vary_w = state.range(1) != 0;
  const bool cached = state.range(2) != 0;
  QueryEngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = cached ? (8u << 20) : 0;
  auto opened = QueryEngine::Open(f.snap_path, options);
  if (!opened.ok()) {
    state.SkipWithError("engine open failed");
    return;
  }
  QueryEngine engine = std::move(opened).value();
  const auto& workload = ZipfWorkload(theta_x100, vary_w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Batch(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
  QueryEngineStats stats = engine.stats();
  const double lookups =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  state.counters["hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["cache_misses"] = static_cast<double>(stats.cache_misses);
  state.counters["cache_evictions"] =
      static_cast<double>(stats.cache_evictions);
}
BENCHMARK(BM_ZipfServeThroughput)
    // {theta x100, vary_w, cache}: three skews (0.6 mild, 0.99 the classic
    // YCSB default, 1.2 hot), exact-w and re-rolled-w repeats, off/on.
    ->Args({60, 0, 0})->Args({60, 0, 1})
    ->Args({60, 1, 0})->Args({60, 1, 1})
    ->Args({99, 0, 0})->Args({99, 0, 1})
    ->Args({99, 1, 0})->Args({99, 1, 1})
    ->Args({120, 0, 0})->Args({120, 0, 1})
    ->Args({120, 1, 0})->Args({120, 1, 1})
    ->ArgNames({"zipf100", "vary_w", "cache"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------- live-update benchmarks

// Hot snapshot swap latency: the cost of publishing a new engine
// generation to a SwappableQueryService while it serves. This is the
// blocking cost a reload imposes on concurrent queries (one mutex-guarded
// shared_ptr store; the old generation is destroyed off the measured
// path only when the last in-flight query drops its pin).
void BM_HotSwapLatency(benchmark::State& state) {
  const ServeFixture& f = FixtureForSize(0);
  QueryEngineOptions options;
  options.num_threads = 1;
  auto open_a = QueryEngine::Open(f.snap_path, options);
  auto open_b = QueryEngine::Open(f.snap_path, options);
  if (!open_a.ok() || !open_b.ok()) {
    state.SkipWithError("engine open failed");
    return;
  }
  auto service_a = MakeQueryService(
      std::make_shared<const QueryEngine>(std::move(open_a).value()));
  auto service_b = MakeQueryService(
      std::make_shared<const QueryEngine>(std::move(open_b).value()));
  SwappableQueryService swappable(service_a);
  bool to_b = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(swappable.Swap(to_b ? service_b : service_a));
    to_b = !to_b;
  }
  state.counters["generations"] =
      static_cast<double>(swappable.generation());
}
BENCHMARK(BM_HotSwapLatency)->Unit(benchmark::kNanosecond);

// Post-swap cache-hit retention: one shared cache filled by generation A,
// delta-invalidated scoped to a one-edge upgrade, then replayed through
// generation B. post_swap_hit_rate is what scoped invalidation preserves;
// a wholesale Rebind would replay this workload fully cold.
void BM_PostSwapCacheRetention(benchmark::State& state) {
  struct RetentionFixture {
    std::shared_ptr<const WcIndex> index_a;
    std::shared_ptr<const WcIndex> index_b;
    DeltaImpact impact;
    std::vector<BatchQueryInput> workload;
  };
  static const RetentionFixture fx = [] {
    RetentionFixture f;
    Dataset d = MakeSocialDataset("EU", 0.12);
    WcIndex a = WcIndex::Build(d.graph, WcIndexOptions::Plus());
    a.Finalize();
    f.index_a = std::make_shared<const WcIndex>(std::move(a));
    const Vertex eu = 0;
    const Arc arc = d.graph.Neighbors(0)[0];
    DynamicWcIndex dyn(d.graph);
    dyn.InsertEdge(eu, arc.to, arc.quality + 1.0f);
    WcIndex b = WcIndex::Build(dyn.Snapshot(), WcIndexOptions::Plus());
    b.Finalize();
    f.index_b = std::make_shared<const WcIndex>(std::move(b));
    f.impact = {eu, arc.to, arc.quality, arc.quality + 1.0f};
    for (const WcsdQuery& q :
         MakeZipfQueryWorkload(d.graph, 8192, /*pool_size=*/2048, 0.99,
                               /*vary_w=*/true, 0x5a5au)) {
      f.workload.push_back({q.s, q.t, q.w});
    }
    return f;
  }();

  auto cache = std::make_shared<ResultCache>(8u << 20);
  QueryEngineOptions options;
  options.num_threads = 1;
  options.shared_cache = cache;
  QueryEngine engine_a(fx.index_a, options);
  QueryEngine engine_b(fx.index_b, options);
  const WcIndex& old_index = *fx.index_a;
  auto coupled = [&old_index](Vertex s, Vertex t, const DeltaImpact& im,
                              Quality w_test) {
    return (old_index.Query(s, im.u, w_test) != kInfDistance &&
            old_index.Query(im.v, t, w_test) != kInfDistance) ||
           (old_index.Query(s, im.v, w_test) != kInfDistance &&
            old_index.Query(im.u, t, w_test) != kInfDistance);
  };

  double hits = 0.0;
  double lookups = 0.0;
  double dropped = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    cache->Rebind(engine_a.cache_fingerprint());
    benchmark::DoNotOptimize(engine_a.Batch(fx.workload));
    dropped += static_cast<double>(cache->InvalidateDelta(
        engine_b.cache_fingerprint(), {&fx.impact, 1}, coupled));
    ResultCacheStats before = cache->stats();
    state.ResumeTiming();
    // The timed section is the post-swap replay through generation B.
    benchmark::DoNotOptimize(engine_b.Batch(fx.workload));
    state.PauseTiming();
    ResultCacheStats after = cache->stats();
    hits += static_cast<double>(after.hits - before.hits);
    lookups += static_cast<double>((after.hits - before.hits) +
                                   (after.misses - before.misses));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.workload.size()));
  state.counters["post_swap_hit_rate"] =
      lookups > 0 ? hits / lookups : 0.0;
  state.counters["dropped_per_swap"] =
      state.iterations() > 0
          ? dropped / static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_PostSwapCacheRetention)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcsd

WCSD_BENCH_JSON_MAIN("micro_serve")
