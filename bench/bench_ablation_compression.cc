// Ablation C: compressed label storage. Extends the Figure 6/11 index-size
// story: the 12-byte working entries delta/varint-encode to a fraction of
// their raw size, at an (measured) decode cost per query.

#include "bench_common.h"
#include "labeling/compressed_labels.h"

using namespace wcsd;
using namespace wcsd::bench;

namespace {

void RunFamily(const std::vector<std::string>& names, bool social,
               const BenchConfig& config) {
  TablePrinter table(
      social ? "Social networks" : "Road networks",
      {"dataset", "raw(GB)", "compressed(GB)", "ratio", "query(ms)",
       "cquery(ms)"},
      {9, 11, 15, 8, 11, 11});
  for (const std::string& name : names) {
    Dataset d = social ? MakeSocialDataset(name, config.scale)
                       : MakeRoadDataset(name, config.scale);
    WcIndex index = WcIndex::Build(d.graph, WcIndexOptions::Plus());
    CompressedLabelSet compressed =
        CompressedLabelSet::Compress(index.labels());
    auto workload =
        MakeQueryWorkload(d.graph, config.queries, config.seed);
    double raw_ms = TimeQueriesMs(
        workload,
        [&](Vertex s, Vertex t, Quality w) { return index.Query(s, t, w); });
    double compressed_ms = TimeQueriesMs(
        workload, [&](Vertex s, Vertex t, Quality w) {
          return compressed.Query(s, t, w);
        });
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(index.MemoryBytes()) /
                      static_cast<double>(compressed.MemoryBytes()));
    table.Row({name, FormatGb(index.MemoryBytes()),
               FormatGb(compressed.MemoryBytes()), ratio,
               FormatMillis(raw_ms), FormatMillis(compressed_ms)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Ablation C: compressed label storage", config,
                "cquery = query evaluated directly on the compressed form");
  RunFamily({"NY", "COL", "CAL"}, /*social=*/false, config);
  RunFamily({"MV-10", "EU", "SO-Y"}, /*social=*/true, config);
  return 0;
}
