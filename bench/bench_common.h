// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --scale=<f>    dataset scale factor (default 1.0 = EXPERIMENTS.md size)
//   --queries=<n>  workload size for index methods (default 10000, §VI)
//   --online=<n>   workload size for online methods (default 200)
//   --budget_mb=<n> Naïve memory budget; exceeding it prints INF like the
//                   paper's out-of-memory cells (default 48 at scale 1.0,
//                   calibrated so Naïve fails on WST/CTR as in the paper)
//   --seed=<n>     workload seed (default 42)

#ifndef WCSD_BENCH_BENCH_COMMON_H_
#define WCSD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/datasets.h"
#include "bench/harness.h"
#include "bench/workload.h"
#include "core/wc_index.h"
#include "labeling/naive_index.h"
#include "util/flags.h"
#include "util/timer.h"

namespace wcsd::bench {

/// Parsed common flags.
struct BenchConfig {
  double scale = 1.0;
  size_t queries = 10000;
  size_t online_queries = 200;
  size_t budget_mb = 1024;
  uint64_t seed = 42;

  static BenchConfig FromFlags(int argc, char** argv,
                               size_t default_budget_mb = 48) {
    Flags flags(argc, argv);
    BenchConfig config;
    config.scale = flags.GetDouble("scale", 1.0);
    config.queries = static_cast<size_t>(flags.GetInt("queries", 10000));
    config.online_queries =
        static_cast<size_t>(flags.GetInt("online", 200));
    config.budget_mb = static_cast<size_t>(
        flags.GetInt("budget_mb", static_cast<int64_t>(default_budget_mb)));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    return config;
  }
};

/// Build outcome of one indexing method on one dataset.
struct BuildOutcome {
  double seconds = 0.0;
  size_t bytes = 0;
  bool failed = false;  // Rendered as the paper's INF cell.
};

/// Times a Naïve build under the configured budget.
inline BuildOutcome BuildNaive(const QualityGraph& g, size_t budget_mb) {
  NaiveWcsdIndex::Options options;
  options.memory_budget_bytes = budget_mb << 20;
  Timer timer;
  auto built = NaiveWcsdIndex::Build(g, options);
  BuildOutcome outcome;
  outcome.seconds = timer.Seconds();
  if (!built.ok()) {
    outcome.failed = true;
    return outcome;
  }
  outcome.bytes = built.value().MemoryBytes();
  return outcome;
}

/// Times a WC-INDEX build with the given options.
inline BuildOutcome BuildWc(const QualityGraph& g,
                            const WcIndexOptions& options) {
  Timer timer;
  WcIndex index = WcIndex::Build(g, options);
  BuildOutcome outcome;
  outcome.seconds = timer.Seconds();
  outcome.bytes = index.MemoryBytes();
  return outcome;
}

/// Average milliseconds per query for `fn` over `workload`.
inline double TimeQueriesMs(
    const std::vector<WcsdQuery>& workload,
    const std::function<Distance(Vertex, Vertex, Quality)>& fn) {
  // Touch a few queries first so lazily-allocated scratch is faulted in.
  size_t warmup = std::min<size_t>(8, workload.size());
  volatile Distance sink = 0;
  for (size_t i = 0; i < warmup; ++i) {
    sink = sink + fn(workload[i].s, workload[i].t, workload[i].w);
  }
  Timer timer;
  for (const WcsdQuery& q : workload) {
    sink = sink + fn(q.s, q.t, q.w);
  }
  double total_ms = timer.Millis();
  (void)sink;
  return workload.empty() ? 0.0
                          : total_ms / static_cast<double>(workload.size());
}

/// Prints the standard bench preamble.
inline void PrintPreamble(const char* figure, const BenchConfig& config,
                          const char* note) {
  std::printf("%s\n", figure);
  std::printf("scale=%.3g queries=%zu online=%zu budget=%zuMB seed=%llu\n",
              config.scale, config.queries, config.online_queries,
              config.budget_mb,
              static_cast<unsigned long long>(config.seed));
  if (note && note[0]) std::printf("%s\n", note);
}

}  // namespace wcsd::bench

#endif  // WCSD_BENCH_BENCH_COMMON_H_
