// Figure 9 reproduction: index size (GB) with |w| = 20 on NY ... EST.
//
// Paper shape to reproduce: Naïve's footprint scales with |w| (20 separate
// indexes) while the single WC-INDEX grows only with the dominance
// frontier; WC-INDEX and WC-INDEX+ sizes coincide under the same order.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  // Larger default budget, as in Figure 8: the paper's Naïve builds on all
  // six datasets at |w| = 20.
  BenchConfig config = BenchConfig::FromFlags(argc, argv,
                                              /*default_budget_mb=*/256);
  PrintPreamble("Figure 9: Indexing size (GB) for road networks, |w| = 20",
                config, "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table("Index size (GB), |w|=20",
                     {"dataset", "|V|", "Naive", "WC-INDEX", "WC-INDEX+"},
                     {9, 10, 12, 12, 12});
  for (const std::string& name :
       {std::string("NY"), std::string("BAY"), std::string("COL"),
        std::string("FLA"), std::string("CAL"), std::string("EST")}) {
    Dataset d = MakeRoadDataset(name, config.scale, /*num_qualities=*/20);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    WcIndexOptions basic = WcIndexOptions::Basic();
    WcIndexOptions fast = WcIndexOptions::Basic();
    fast.query_efficient = true;
    fast.further_pruning = true;
    BuildOutcome wc = BuildWc(d.graph, basic);
    BuildOutcome wc_plus = BuildWc(d.graph, fast);
    table.Row({name, std::to_string(d.graph.NumVertices()),
               naive.failed ? InfCell() : FormatGb(naive.bytes),
               FormatGb(wc.bytes), FormatGb(wc_plus.bytes)});
  }
  return 0;
}
