// Ablation B (§IV.C): the four query implementations — Algorithm 2 scan,
// Algorithm 4 hub-grouped, binary-search, Algorithm 5 merge (Query+) — and
// the effect of the query-efficient construction + Further Pruning on
// indexing time.
//
// Paper shape to reproduce: Query+ fastest at query time; the
// query-efficient construction strictly reduces indexing time at equal
// index size.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Ablation B: query implementations (Algorithms 2/4/5)",
                config, "");

  for (bool social : {false, true}) {
    Dataset d = social ? MakeSocialDataset("EU", config.scale)
                       : MakeRoadDataset("COL", config.scale);
    auto workload = MakeQueryWorkload(d.graph, config.queries, config.seed);
    WcIndex index = WcIndex::Build(d.graph, WcIndexOptions::Plus());

    TablePrinter table(
        std::string("Query implementations (") + d.name + ")",
        {"impl", "algorithm", "query(ms)"}, {12, 22, 12});
    struct Case {
      const char* name;
      const char* algo;
      QueryImpl impl;
    };
    const Case cases[] = {
        {"scan", "Algorithm 2", QueryImpl::kScan},
        {"hub-grouped", "Algorithm 4", QueryImpl::kHubGrouped},
        {"binary", "Alg. 4 + Theorem 3", QueryImpl::kBinary},
        {"merge", "Algorithm 5 (Query+)", QueryImpl::kMerge},
    };
    for (const Case& c : cases) {
      double ms = TimeQueriesMs(
          workload, [&](Vertex s, Vertex t, Quality w) {
            return index.Query(s, t, w, c.impl);
          });
      table.Row({c.name, c.algo, FormatMillis(ms)});
    }

    // Construction-side ablation: basic vs. query-efficient vs. +memo.
    TablePrinter build_table(
        std::string("Construction variants (") + d.name + ")",
        {"variant", "index-time(s)", "size(GB)", "memo-hits"},
        {22, 14, 11, 12});
    struct BuildCase {
      const char* name;
      bool query_efficient;
      bool further_pruning;
    };
    const BuildCase build_cases[] = {
        {"basic (Alg. 4 query)", false, false},
        {"query-efficient", true, false},
        {"query-eff + memo", true, true},
    };
    for (const BuildCase& c : build_cases) {
      WcIndexOptions options;  // Same degree order for comparability.
      options.query_efficient = c.query_efficient;
      options.further_pruning = c.further_pruning;
      Timer timer;
      WcIndex built = WcIndex::Build(d.graph, options);
      double build_s = timer.Seconds();
      build_table.Row({c.name, FormatSeconds(build_s),
                       FormatGb(built.MemoryBytes()),
                       std::to_string(built.build_stats().pruned_by_memo)});
    }
  }
  return 0;
}
