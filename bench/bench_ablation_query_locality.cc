// Ablation D: query-time sensitivity. The paper reports averages over
// uniform random workloads; this bench slices WC-INDEX+ query latency by
// (a) the constraint level and (b) the answer (reachable / unreachable),
// confirming the index has no pathological regime.

#include <map>

#include "bench_common.h"
#include "search/wc_bfs.h"

using namespace wcsd;
using namespace wcsd::bench;

namespace {

void RunDataset(const Dataset& d, const BenchConfig& config) {
  WcIndex index = WcIndex::Build(d.graph, WcIndexOptions::Plus());
  auto thresholds = d.graph.DistinctQualities();

  TablePrinter table(
      "Per-constraint query latency (" + d.name + ")",
      {"w", "queries", "reachable", "query(ms)"}, {8, 10, 11, 11});
  for (Quality w : thresholds) {
    // Fixed endpoints per threshold so rows are comparable.
    auto workload = MakeQueryWorkload(d.graph, config.queries, config.seed);
    for (auto& q : workload) q.w = w;
    size_t reachable = 0;
    for (const auto& q : workload) {
      if (index.Query(q.s, q.t, q.w) != kInfDistance) ++reachable;
    }
    double ms = TimeQueriesMs(
        workload,
        [&](Vertex s, Vertex t, Quality qw) { return index.Query(s, t, qw); });
    char w_cell[16], frac[16];
    std::snprintf(w_cell, sizeof(w_cell), "%g", w);
    std::snprintf(frac, sizeof(frac), "%.1f%%",
                  100.0 * static_cast<double>(reachable) /
                      static_cast<double>(workload.size()));
    table.Row({w_cell, std::to_string(workload.size()), frac,
               FormatMillis(ms)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Ablation D: query latency by constraint level", config, "");
  RunDataset(MakeRoadDataset("COL", config.scale), config);
  RunDataset(MakeSocialDataset("EU", config.scale), config);
  return 0;
}
