// Figure 11 reproduction: index size (GB) on the social-network family.
//
// Paper shape to reproduce: Naïve largest on every dataset; WC-INDEX ==
// WC-INDEX+ under a shared vertex order.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Figure 11: Indexing Size (GB) for social networks", config,
                "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table("Index size (GB)",
                     {"dataset", "|V|", "|w|", "Naive", "WC-INDEX",
                      "WC-INDEX+"},
                     {9, 10, 5, 12, 12, 12});
  for (const std::string& name : SocialDatasetNames()) {
    Dataset d = MakeSocialDataset(name, config.scale);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    WcIndexOptions basic = WcIndexOptions::Basic();
    WcIndexOptions fast = WcIndexOptions::Basic();
    fast.query_efficient = true;
    fast.further_pruning = true;
    BuildOutcome wc = BuildWc(d.graph, basic);
    BuildOutcome wc_plus = BuildWc(d.graph, fast);
    table.Row({name, std::to_string(d.graph.NumVertices()),
               std::to_string(d.num_qualities),
               naive.failed ? InfCell() : FormatGb(naive.bytes),
               FormatGb(wc.bytes), FormatGb(wc_plus.bytes)});
  }
  return 0;
}
