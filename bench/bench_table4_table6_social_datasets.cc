// Tables IV + VI reproduction: social-network statistics (|V|, |E|, |w|)
// and the memory required to store each network (the paper's Table VI).

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Tables IV + VI: social-network summary and storage size",
                config, "");

  TablePrinter table("Social networks",
                     {"dataset", "|V(G)|", "|E(G)|", "|w|", "avg-deg",
                      "max-deg", "size(GB)"},
                     {9, 12, 12, 5, 9, 9, 10});
  for (const std::string& name : SocialDatasetNames()) {
    Dataset d = MakeSocialDataset(name, config.scale);
    char avg[16];
    std::snprintf(avg, sizeof(avg), "%.2f",
                  2.0 * static_cast<double>(d.graph.NumEdges()) /
                      static_cast<double>(d.graph.NumVertices()));
    table.Row({name, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               std::to_string(d.num_qualities), avg,
               std::to_string(d.graph.MaxDegree()),
               FormatGb(d.graph.MemoryBytes())});
  }
  return 0;
}
