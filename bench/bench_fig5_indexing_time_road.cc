// Figure 5 reproduction: indexing time (s) on the road-network family for
// Naïve, WC-INDEX (degree order, basic construction query), and WC-INDEX+
// (hybrid order, query-efficient construction).
//
// Paper shape to reproduce: WC-INDEX+ fastest everywhere; Naïve beats
// WC-INDEX on the small datasets but loses (and eventually goes INF, out
// of memory) as graphs grow.

#include "bench_common.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Figure 5: Indexing Time (s) for road networks", config,
                "series: Naive / WC-INDEX / WC-INDEX+");

  TablePrinter table("Indexing time (s)",
                     {"dataset", "|V|", "|E|", "Naive", "WC-INDEX",
                      "WC-INDEX+"},
                     {9, 10, 10, 12, 12, 12});
  for (const std::string& name : RoadDatasetNames()) {
    Dataset d = MakeRoadDataset(name, config.scale);
    BuildOutcome naive = BuildNaive(d.graph, config.budget_mb);
    BuildOutcome basic = BuildWc(d.graph, WcIndexOptions::Basic());
    BuildOutcome plus = BuildWc(d.graph, WcIndexOptions::Plus());
    table.Row({name, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               naive.failed ? InfCell() : FormatSeconds(naive.seconds),
               FormatSeconds(basic.seconds), FormatSeconds(plus.seconds)});
  }
  return 0;
}
