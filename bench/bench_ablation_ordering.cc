// Ablation A (Observations 2-3, §IV.D): the effect of the vertex ordering
// on indexing time, index size, and query time — degree vs. tree
// decomposition vs. hybrid vs. random, on one road and one social graph.
//
// Paper shape to reproduce: tree-decomposition ordering wins on the road
// network (small treewidth); degree ordering wins on the scale-free graph;
// hybrid tracks the better of the two on both.

#include "bench_common.h"
#include "order/betweenness_order.h"

using namespace wcsd;
using namespace wcsd::bench;

namespace {

void Report(TablePrinter& table, const char* name, const Dataset& d,
            const std::vector<WcsdQuery>& workload, double order_seconds,
            VertexOrder order) {
  Timer timer;
  WcIndex index = WcIndex::BuildWithOrder(d.graph, std::move(order));
  double build_s = order_seconds + timer.Seconds();
  double query_ms = TimeQueriesMs(
      workload,
      [&](Vertex s, Vertex t, Quality w) { return index.Query(s, t, w); });
  char entries[16];
  std::snprintf(entries, sizeof(entries), "%.1f",
                static_cast<double>(index.TotalEntries()) /
                    static_cast<double>(d.graph.NumVertices()));
  table.Row({name, FormatSeconds(build_s), FormatGb(index.MemoryBytes()),
             entries, FormatMillis(query_ms)});
}

void RunFamily(const char* label, const Dataset& d, size_t queries,
               uint64_t seed) {
  TablePrinter table(
      std::string(label) + " (" + d.name + ", |V|=" +
          std::to_string(d.graph.NumVertices()) + ")",
      {"ordering", "index-time(s)", "size(GB)", "entries/v", "query(ms)"},
      {12, 14, 11, 11, 11});
  auto workload = MakeQueryWorkload(d.graph, queries, seed);

  struct Case {
    const char* name;
    WcIndexOptions::Ordering ordering;
  };
  const Case cases[] = {
      {"degree", WcIndexOptions::Ordering::kDegree},
      {"tree", WcIndexOptions::Ordering::kTreeDecomposition},
      {"hybrid", WcIndexOptions::Ordering::kHybrid},
      {"random", WcIndexOptions::Ordering::kRandom},
  };
  for (const Case& c : cases) {
    WcIndexOptions options;
    options.ordering = c.ordering;
    Timer order_timer;
    VertexOrder order = MakeOrder(d.graph, options);
    Report(table, c.name, d, workload, order_timer.Seconds(),
           std::move(order));
  }
  // Extra strategy beyond the paper: approximate-betweenness ranking.
  Timer order_timer;
  VertexOrder order = BetweennessOrder(d.graph, /*samples=*/64, seed);
  Report(table, "betweenness", d, workload, order_timer.Seconds(),
         std::move(order));
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Ablation A: vertex-ordering strategies (Observations 2-3)",
                config, "");
  RunFamily("Road network", MakeRoadDataset("COL", config.scale),
            config.queries, config.seed);
  RunFamily("Social network", MakeSocialDataset("EU", config.scale),
            config.queries, config.seed);
  return 0;
}
