// Glue between google-benchmark and the harness's BENCH_*.json emitter.
//
// The micro benches replace BENCHMARK_MAIN() with WCSD_BENCH_JSON_MAIN(suite)
// so every run leaves a machine-readable BENCH_<suite>.json next to the
// console output. `threads` and `backend` are recovered from the benchmark
// name's Arg annotations ("/threads:4", "/backend:1" with 0 = vector,
// 1 = flat); benchmarks without the annotation record threads=1, backend
// "vector".

#ifndef WCSD_BENCH_BENCH_JSON_H_
#define WCSD_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/harness.h"

namespace wcsd::bench {

/// Extracts the integer following `key:` in a benchmark run name, or `def`.
inline long ArgFromRunName(const std::string& name, const std::string& key,
                           long def) {
  size_t pos = name.find(key + ":");
  if (pos == std::string::npos) return def;
  return std::strtol(name.c_str() + pos + key.size() + 1, nullptr, 10);
}

/// Console reporter that also feeds every run into a BenchJsonWriter.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(const std::string& suite) : writer_(suite) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Aggregate rows (mean/median/stddev/cv under --benchmark_repetitions)
      // would put non-latency values into median_ns; keep raw runs only.
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      BenchRecord record;
      record.name = run.benchmark_name();
      record.median_ns =
          run.GetAdjustedRealTime() *
          benchmark::GetTimeUnitMultiplier(benchmark::kNanosecond) /
          benchmark::GetTimeUnitMultiplier(run.time_unit);
      record.threads =
          static_cast<size_t>(ArgFromRunName(record.name, "threads", 1));
      record.backend =
          ArgFromRunName(record.name, "backend", 0) == 1 ? "flat" : "vector";
      for (const auto& [name, counter] : run.counters) {
        record.counters.emplace_back(name,
                                     static_cast<double>(counter.value));
      }
      writer_.Record(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  // Framework hook, called once by RunSpecifiedBenchmarks after all runs.
  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::string path;
    Status st = writer_.WriteFile(&path);
    if (st.ok()) {
      std::printf("wrote %s (%zu records)\n", path.c_str(),
                  writer_.records().size());
    } else {
      std::fprintf(stderr, "BENCH json: %s\n", st.ToString().c_str());
    }
  }

 private:
  BenchJsonWriter writer_;
};

}  // namespace wcsd::bench

#define WCSD_BENCH_JSON_MAIN(suite)                          \
  int main(int argc, char** argv) {                          \
    benchmark::Initialize(&argc, argv);                      \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                              \
    }                                                        \
    wcsd::bench::JsonExportReporter reporter(suite);         \
    benchmark::RunSpecifiedBenchmarks(&reporter);            \
    benchmark::Shutdown();                                   \
    return 0;                                                \
  }

#endif  // WCSD_BENCH_BENCH_JSON_H_
