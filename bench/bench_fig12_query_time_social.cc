// Figure 12 reproduction: query time (ms) on the social-network family for
// W-BFS, C-BFS, Naïve, WC-INDEX, WC-INDEX+ (the paper drops Dijkstra here:
// on unweighted social graphs it coincides with W-BFS).
//
// Paper shape to reproduce: index methods orders of magnitude faster than
// the online searches; WC-INDEX/WC-INDEX+ comparable to Naïve per query.

#include "bench_common.h"
#include "search/partitioned_bfs.h"
#include "search/wc_bfs.h"

using namespace wcsd;
using namespace wcsd::bench;

int main(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  PrintPreamble("Figure 12: Querying time (ms) for social networks", config,
                "series: W-BFS / C-BFS / Naive / WC-INDEX / WC-INDEX+ "
                "(online methods use the smaller workload)");

  TablePrinter table("Query time (ms/query)",
                     {"dataset", "W-BFS", "C-BFS", "Naive", "WC-INDEX",
                      "WC-INDEX+"},
                     {9, 11, 11, 11, 11, 11});
  for (const std::string& name : SocialDatasetNames()) {
    Dataset d = MakeSocialDataset(name, config.scale);
    auto online_workload =
        MakeQueryWorkload(d.graph, config.online_queries, config.seed);
    auto index_workload =
        MakeQueryWorkload(d.graph, config.queries, config.seed);

    PartitionedBfs w_bfs(d.graph);
    double w_bfs_ms = TimeQueriesMs(
        online_workload,
        [&](Vertex s, Vertex t, Quality w) { return w_bfs.Query(s, t, w); });

    WcBfs c_bfs(&d.graph);
    double c_bfs_ms = TimeQueriesMs(
        online_workload,
        [&](Vertex s, Vertex t, Quality w) { return c_bfs.Query(s, t, w); });

    NaiveWcsdIndex::Options naive_options;
    naive_options.memory_budget_bytes = config.budget_mb << 20;
    auto naive = NaiveWcsdIndex::Build(d.graph, naive_options);
    std::string naive_cell = InfCell();
    if (naive.ok()) {
      naive_cell = FormatMillis(TimeQueriesMs(
          index_workload, [&](Vertex s, Vertex t, Quality w) {
            return naive.value().Query(s, t, w);
          }));
    }

    WcIndex wc = WcIndex::Build(d.graph, WcIndexOptions::Basic());
    double wc_ms = TimeQueriesMs(
        index_workload,
        [&](Vertex s, Vertex t, Quality w) { return wc.Query(s, t, w); });

    WcIndex wc_plus = WcIndex::Build(d.graph, WcIndexOptions::Plus());
    double wc_plus_ms = TimeQueriesMs(
        index_workload, [&](Vertex s, Vertex t, Quality w) {
          return wc_plus.Query(s, t, w);
        });

    table.Row({name, FormatMillis(w_bfs_ms), FormatMillis(c_bfs_ms),
               naive_cell, FormatMillis(wc_ms), FormatMillis(wc_plus_ms)});
  }
  return 0;
}
