// Google-benchmark microbenchmarks for index construction: WC-INDEX
// variants and baselines on small fixed datasets, so per-build costs are
// comparable run to run.

#include <benchmark/benchmark.h>

#include "bench/datasets.h"
#include "core/wc_index.h"
#include "labeling/lcr_adapt.h"
#include "labeling/naive_index.h"
#include "labeling/pll.h"

namespace wcsd {
namespace {

const Dataset& RoadDataset() {
  static const Dataset d = MakeRoadDataset("NY", 0.25);
  return d;
}

const Dataset& SocialDataset() {
  static const Dataset d = MakeSocialDataset("MV-10", 0.25);
  return d;
}

void BM_BuildWcIndexPlus_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(RoadDataset().graph, WcIndexOptions::Plus()));
  }
}
BENCHMARK(BM_BuildWcIndexPlus_Road)->Unit(benchmark::kMillisecond);

void BM_BuildWcIndexBasic_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(RoadDataset().graph, WcIndexOptions::Basic()));
  }
}
BENCHMARK(BM_BuildWcIndexBasic_Road)->Unit(benchmark::kMillisecond);

void BM_BuildNaive_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveWcsdIndex::Build(RoadDataset().graph));
  }
}
BENCHMARK(BM_BuildNaive_Road)->Unit(benchmark::kMillisecond);

void BM_BuildLcrAdapt_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcrAdaptIndex::Build(RoadDataset().graph));
  }
}
BENCHMARK(BM_BuildLcrAdapt_Road)->Unit(benchmark::kMillisecond);

void BM_BuildWcIndexPlus_Social(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(SocialDataset().graph, WcIndexOptions::Plus()));
  }
}
BENCHMARK(BM_BuildWcIndexPlus_Social)->Unit(benchmark::kMillisecond);

void BM_BuildPllSingleLevel_Social(benchmark::State& state) {
  // One classic PLL on the unfiltered graph: the per-level unit of work
  // inside the Naïve baseline.
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pll::Build(SocialDataset().graph));
  }
}
BENCHMARK(BM_BuildPllSingleLevel_Social)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcsd

BENCHMARK_MAIN();
