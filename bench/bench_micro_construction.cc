// Google-benchmark microbenchmarks for index construction: WC-INDEX
// variants (including the rank-batched parallel pipeline at 1/2/4/8
// threads) and baselines on small fixed datasets, so per-build costs are
// comparable run to run. Emits BENCH_micro_construction.json.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/datasets.h"
#include "core/wc_index.h"
#include "labeling/lcr_adapt.h"
#include "labeling/naive_index.h"
#include "labeling/pll.h"

namespace wcsd {
namespace {

const Dataset& RoadDataset() {
  static const Dataset d = MakeRoadDataset("NY", 0.25);
  return d;
}

const Dataset& SocialDataset() {
  static const Dataset d = MakeSocialDataset("MV-10", 0.25);
  return d;
}

// The largest graph this suite builds on: the parallel-speedup subject.
const Dataset& LargeRoadDataset() {
  static const Dataset d = MakeRoadDataset("COL", 1.0);
  return d;
}

const Dataset& LargeSocialDataset() {
  static const Dataset d = MakeSocialDataset("MV-10", 1.0);
  return d;
}

void BM_BuildWcIndexPlus_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(RoadDataset().graph, WcIndexOptions::Plus()));
  }
}
BENCHMARK(BM_BuildWcIndexPlus_Road)->Unit(benchmark::kMillisecond);

void BM_BuildWcIndexBasic_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(RoadDataset().graph, WcIndexOptions::Basic()));
  }
}
BENCHMARK(BM_BuildWcIndexBasic_Road)->Unit(benchmark::kMillisecond);

void BM_BuildNaive_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveWcsdIndex::Build(RoadDataset().graph));
  }
}
BENCHMARK(BM_BuildNaive_Road)->Unit(benchmark::kMillisecond);

void BM_BuildLcrAdapt_Road(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcrAdaptIndex::Build(RoadDataset().graph));
  }
}
BENCHMARK(BM_BuildLcrAdapt_Road)->Unit(benchmark::kMillisecond);

void BM_BuildWcIndexPlus_Social(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(SocialDataset().graph, WcIndexOptions::Plus()));
  }
}
BENCHMARK(BM_BuildWcIndexPlus_Social)->Unit(benchmark::kMillisecond);

void BM_BuildPllSingleLevel_Social(benchmark::State& state) {
  // One classic PLL on the unfiltered graph: the per-level unit of work
  // inside the Naïve baseline.
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pll::Build(SocialDataset().graph));
  }
}
BENCHMARK(BM_BuildPllSingleLevel_Social)->Unit(benchmark::kMillisecond);

// Parallel construction pipeline: same build, 1/2/4/8 worker threads.
// threads=1 goes through the exact sequential loop; every other setting
// produces the bit-identical index (tested in test_parallel_build.cc).
void BM_BuildWcIndexPlusThreads_LargeRoad(benchmark::State& state) {
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(LargeRoadDataset().graph, options));
  }
}
BENCHMARK(BM_BuildWcIndexPlusThreads_LargeRoad)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

void BM_BuildWcIndexPlusThreads_Social(benchmark::State& state) {
  WcIndexOptions options = WcIndexOptions::Plus();
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WcIndex::Build(LargeSocialDataset().graph, options));
  }
}
BENCHMARK(BM_BuildWcIndexPlusThreads_Social)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wcsd

WCSD_BENCH_JSON_MAIN("micro_construction")
