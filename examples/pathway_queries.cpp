// Biological pathway queries (paper §I, Application 3): vertices are
// substances (enzymes, genes, metabolites), DIRECTED edges are reactions or
// regulatory interactions, and the quality is the measured activity of the
// catalyzing kinase. "Find the shortest pathway from substance u to
// substance v where every interaction has activity >= w" is exactly a
// directed WCSD query.
//
//   $ ./build/examples/pathway_queries

#include <cstdio>
#include <vector>

#include "core/directed_wc_index.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/timer.h"

using namespace wcsd;

int main() {
  // A synthetic regulatory network: a directed random graph of 1200
  // substances with ~7k interactions; activity levels 1..10. (Uniformly
  // random digraphs lack hub structure, so labels grow faster than on real
  // networks — keep the example compact.)
  const size_t substances = 1200;
  QualityModel activity;
  activity.num_levels = 10;
  DirectedQualityGraph network =
      GenerateRandomDirected(substances, 7200, activity, /*seed=*/404);
  std::printf("Regulatory network: %zu substances, %zu interactions, "
              "activity levels 1-10\n",
              substances, network.NumArcs());

  Timer build_timer;
  DirectedWcIndex index = DirectedWcIndex::Build(network);
  std::printf("directed WC-INDEX built in %.2f s "
              "(L_in + L_out = %zu entries)\n\n",
              build_timer.Seconds(), index.TotalEntries());

  // Pathway screening: from a signaling source, how far is each target
  // when only high-activity interactions are trusted?
  Vertex source = 7;
  std::vector<Vertex> targets{12, 99, 256, 512, 880, 1199};
  std::printf("Pathways from substance %u:\n", source);
  std::printf("  %-9s %-24s %-24s\n", "target", "any-activity dist",
              "high-activity (>=8) dist");
  for (Vertex t : targets) {
    Distance any = index.Query(source, t, 1.0f);
    Distance high = index.Query(source, t, 8.0f);
    char any_cell[16], high_cell[16];
    if (any == kInfDistance) {
      std::snprintf(any_cell, sizeof(any_cell), "-");
    } else {
      std::snprintf(any_cell, sizeof(any_cell), "%u", any);
    }
    if (high == kInfDistance) {
      std::snprintf(high_cell, sizeof(high_cell), "-");
    } else {
      std::snprintf(high_cell, sizeof(high_cell), "%u", high);
    }
    std::printf("  %-9u %-24s %-24s\n", t, any_cell, high_cell);
  }

  // Directionality matters in regulation: u -> v existing does not imply
  // v -> u. Count asymmetric pairs in a sample.
  Rng rng(11);
  size_t asymmetric = 0, sampled = 0;
  for (int i = 0; i < 2000; ++i) {
    Vertex a = static_cast<Vertex>(rng.NextBounded(substances));
    Vertex b = static_cast<Vertex>(rng.NextBounded(substances));
    if (a == b) continue;
    ++sampled;
    bool forward = index.Query(a, b, 5.0f) != kInfDistance;
    bool backward = index.Query(b, a, 5.0f) != kInfDistance;
    if (forward != backward) ++asymmetric;
  }
  std::printf("\nDirectionality: %zu of %zu sampled pairs are reachable in "
              "only one direction at activity >= 5\n",
              asymmetric, sampled);

  // Throughput for screening pipelines.
  Timer query_timer;
  const size_t batch = 100000;
  uint64_t checksum = 0;
  for (size_t i = 0; i < batch; ++i) {
    Vertex a = static_cast<Vertex>((i * 48271u) % substances);
    Vertex b = static_cast<Vertex>((i * 16807u + 3) % substances);
    Quality w = static_cast<Quality>(1 + (i % 10));
    Distance d = index.Query(a, b, w);
    checksum += (d == kInfDistance) ? 0 : d;
  }
  std::printf("%zu pathway queries in %.2f s (%.2f us/query, checksum %llu)\n",
              batch, query_timer.Seconds(),
              query_timer.Seconds() / static_cast<double>(batch) * 1e6,
              static_cast<unsigned long long>(checksum));
  return 0;
}
