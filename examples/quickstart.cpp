// Quickstart: build the paper's running-example graph (Figure 3), print
// its WC-INDEX (reproducing Table II), and answer Example 3's query
// Q(v2, v5, 2).
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/verifier.h"
#include "core/wc_index.h"
#include "graph/builder.h"

using namespace wcsd;

int main() {
  // Figure 3: six vertices, edge qualities as annotated in the paper.
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 3);
  builder.AddEdge(0, 3, 1);
  builder.AddEdge(1, 2, 5);
  builder.AddEdge(1, 3, 2);
  builder.AddEdge(2, 3, 4);
  builder.AddEdge(3, 4, 4);
  builder.AddEdge(3, 5, 2);
  builder.AddEdge(4, 5, 3);
  QualityGraph g = builder.Build();
  std::printf("Graph: %zu vertices, %zu edges, |w| = %zu\n", g.NumVertices(),
              g.NumEdges(), g.DistinctQualities().size());

  // Build WC-INDEX with the paper's walkthrough order (v0, v1, ...).
  WcIndexOptions options;
  options.ordering = WcIndexOptions::Ordering::kIdentity;
  WcIndex index = WcIndex::Build(g, options);

  std::printf("\nWC-INDEX (Table II):\n");
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    std::printf("  L(v%u) =", v);
    for (const LabelEntry& e : index.labels().For(v)) {
      if (e.quality == kInfQuality) {
        std::printf(" (v%u,%u,inf)", e.hub, e.dist);
      } else {
        std::printf(" (v%u,%u,%g)", e.hub, e.dist, e.quality);
      }
    }
    std::printf("\n");
  }

  // Example 3: Q(v2, v5, 2).
  std::printf("\nQ(v2, v5, w=2) = %u   (paper: 2 via v2 -> v3 -> v5)\n",
              index.Query(2, 5, 2.0f));
  // A stricter constraint changes the answer; an unsatisfiable one is INF.
  std::printf("Q(v0, v4, w=1) = %u   Q(v0, v4, w=3) = %u\n",
              index.Query(0, 4, 1.0f), index.Query(0, 4, 3.0f));
  Distance inf = index.Query(0, 4, 6.0f);
  std::printf("Q(v0, v4, w=6) = %s\n",
              inf == kInfDistance ? "INF (no 6-path exists)" : "??");

  // The three Theorem 1 properties, checked by brute force.
  VerificationReport report = VerifyAll(index, g);
  std::printf("\nVerification: %s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}
