// Social-network closeness under connection-strength constraints (paper
// §I, Application 2): edge qualities are tie strengths; the w-constrained
// distance measures how close two users are through sufficiently strong
// connections only, and is a natural search-ranking signal.
//
//   $ ./build/examples/social_closeness [--scale=0.3]

#include <cstdio>
#include <vector>

#include "core/wc_index.h"
#include "graph/generators.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wcsd;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.15);

  // Scale-free friendship graph; strengths 1..5 (5 = close friends).
  size_t users = static_cast<size_t>(20000.0 * scale) + 100;
  QualityModel strengths;
  strengths.num_levels = 5;
  QualityGraph network = GenerateBarabasiAlbert(users, 10, strengths, 77);
  std::printf("Social network: %zu users, %zu ties, strengths 1-5\n",
              network.NumVertices(), network.NumEdges());

  // Hybrid ordering: the right choice for scale-free graphs (paper §IV.D).
  Timer build_timer;
  WcIndex index = WcIndex::Build(network, WcIndexOptions::Plus());
  std::printf("WC-INDEX+ built in %.2f s, %s of labels\n\n",
              build_timer.Seconds(),
              index.MemoryBytes() > (1u << 20)
                  ? "MBs"
                  : "KBs");

  // Ranking scenario: order candidate profiles by strong-tie distance from
  // the querying user, tie-breaking by any-tie distance.
  Vertex querying_user = 1;
  std::vector<Vertex> candidates{5, 17, 42, 99,
                                 static_cast<Vertex>(users / 2),
                                 static_cast<Vertex>(users - 1)};
  std::printf("Ranking for user %u (strong ties = strength >= 4):\n",
              querying_user);
  std::printf("  %-10s %-18s %-14s\n", "candidate", "strong-tie dist",
              "any-tie dist");
  for (Vertex c : candidates) {
    Distance strong = index.Query(querying_user, c, 4.0f);
    Distance any = index.Query(querying_user, c, 1.0f);
    if (strong == kInfDistance) {
      std::printf("  %-10u %-18s %-14u\n", c, "unreachable", any);
    } else {
      std::printf("  %-10u %-18u %-14u\n", c, strong, any);
    }
  }

  // Throughput: the workload pattern of a search-ranking backend.
  Timer query_timer;
  size_t batches = 200000;
  uint64_t checksum = 0;
  for (size_t i = 0; i < batches; ++i) {
    Vertex a = static_cast<Vertex>((i * 2654435761u) % users);
    Vertex b = static_cast<Vertex>((i * 40503u + 7) % users);
    Quality w = static_cast<Quality>(1 + (i % 5));
    Distance d = index.Query(a, b, w);
    checksum += (d == kInfDistance) ? 0 : d;
  }
  double elapsed = query_timer.Seconds();
  std::printf("\n%zu constrained queries in %.2f s (%.2f us/query,"
              " checksum %llu)\n",
              batches, elapsed, elapsed / static_cast<double>(batches) * 1e6,
              static_cast<unsigned long long>(checksum));
  return 0;
}
