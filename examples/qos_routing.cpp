// Communication-network QoS routing (paper §I, Application 1 and Figure 1):
// links carry minimum-bandwidth guarantees; a quality constrained shortest
// distance query finds the fewest-hop route that sustains a required
// bandwidth end to end.
//
//   $ ./build/examples/qos_routing

#include <cstdio>

#include "core/path_index.h"
#include "core/wc_index.h"
#include "graph/builder.h"

using namespace wcsd;

namespace {
const char* kNodeNames[] = {"R1", "R2", "R3", "R4", "S1", "S2"};
}  // namespace

int main() {
  // Figure 1's network: routers R1-R4, switches S1-S2; qualities are link
  // bandwidths in Mbps.
  GraphBuilder builder(6);
  builder.AddEdge(2, 4, 5);  // R3 - S1
  builder.AddEdge(4, 1, 2);  // S1 - R2  (the 2 Mbps bottleneck)
  builder.AddEdge(4, 3, 4);  // S1 - R4
  builder.AddEdge(3, 5, 4);  // R4 - S2
  builder.AddEdge(5, 1, 3);  // S2 - R2
  builder.AddEdge(0, 4, 3);  // R1 - S1
  QualityGraph network = builder.Build();

  WcIndexOptions options;
  options.record_parents = true;  // Quad labels: we want the actual route.
  WcIndex index = WcIndex::Build(network, options);

  std::printf("QoS routing on the Figure 1 network\n");
  std::printf("links: R3-S1:5  S1-R2:2  S1-R4:4  R4-S2:4  S2-R2:3  R1-S1:3"
              " (Mbps)\n\n");

  // The paper's example: stream from R3 to R2 requiring 3 Mbps.
  for (Quality mbps : {1.0f, 3.0f, 5.0f}) {
    Distance d = index.Query(2, 1, mbps);
    std::printf("R3 -> R2 with >= %.0f Mbps: ", mbps);
    if (d == kInfDistance) {
      std::printf("no feasible route\n");
      continue;
    }
    std::printf("distance %u, route:", d);
    for (Vertex hop : QueryConstrainedPath(index, network, 2, 1, mbps)) {
      std::printf(" %s", kNodeNames[hop]);
    }
    std::printf("\n");
  }

  // Capacity planning: for every router pair, the best bandwidth class that
  // still admits a route (sweep the distinct qualities).
  std::printf("\nHighest sustainable bandwidth class per router pair:\n");
  auto classes = network.DistinctQualities();
  for (Vertex a : {0, 1, 2, 3}) {
    for (Vertex b : {0, 1, 2, 3}) {
      if (a >= b) continue;
      Quality best = -1;
      for (Quality c : classes) {
        if (index.Reachable(a, b, c)) best = c;
      }
      std::printf("  %s <-> %s : %g Mbps (distance %u)\n", kNodeNames[a],
                  kNodeNames[b], best, index.Query(a, b, best));
    }
  }
  return 0;
}
