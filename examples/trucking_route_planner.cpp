// Road-network truck routing (paper §I: "road segments may specify the
// weight limits permitted for auto-trucks"): edge qualities are bridge /
// road weight limits in tonnes, and a loaded truck needs the shortest route
// whose every segment admits its gross weight.
//
//   $ ./build/examples/trucking_route_planner [--scale=0.3]

#include <cstdio>

#include "core/path_index.h"
#include "core/wc_index.h"
#include "graph/generators.h"
#include "search/wc_bfs.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace wcsd;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 0.3);

  // A synthetic city road grid; qualities 1..8 are weight limits in tonnes
  // (8 = unrestricted arterial, 1 = light residential street). Every 8th
  // row/column is an arterial rated for the heaviest trucks.
  RoadOptions options;
  options.rows = options.cols =
      static_cast<size_t>(96.0 * scale) + 8;
  options.quality.num_levels = 8;
  options.arterial_spacing = 8;
  QualityGraph roads = GenerateRoadNetwork(options, /*seed=*/2026);
  std::printf("Road network: %zu intersections, %zu segments, limits 1-8t\n",
              roads.NumVertices(), roads.NumEdges());

  // Tree-decomposition ordering: the right choice for road networks
  // (paper Observation 3). Record parents so routes can be printed.
  WcIndexOptions index_options;
  index_options.ordering = WcIndexOptions::Ordering::kTreeDecomposition;
  index_options.record_parents = true;
  Timer build_timer;
  WcIndex index = WcIndex::Build(roads, index_options);
  std::printf("WC-INDEX built in %.2f s: %zu entries (%.1f per vertex)\n\n",
              build_timer.Seconds(), index.TotalEntries(),
              static_cast<double>(index.TotalEntries()) /
                  static_cast<double>(roads.NumVertices()));

  // Dispatch scenarios: same depot/destination, different truck weights.
  // The depot sits at an arterial corner; the destination is the farthest
  // arterial crossing, so even the heaviest class has some legal route.
  size_t side = options.rows;
  size_t last_arterial = ((side - 1) / options.arterial_spacing) *
                         options.arterial_spacing;
  Vertex depot = 0;
  Vertex destination =
      static_cast<Vertex>(last_arterial * side + last_arterial);
  std::printf("Depot %u -> arterial destination %u\n", depot, destination);
  for (Quality tonnes : {1.0f, 4.0f, 6.0f, 8.0f}) {
    Timer query_timer;
    Distance d = index.Query(depot, destination, tonnes);
    double micros = query_timer.Micros();
    if (d == kInfDistance) {
      std::printf("  %2.0ft truck: no admissible route (%.1f us)\n",
                  tonnes, micros);
      continue;
    }
    std::printf("  %2.0ft truck: %u segments (query %.1f us)\n", tonnes, d,
                micros);
  }

  // A residential (non-arterial) destination typically cuts off the
  // heaviest classes on the last mile — the dispatcher sees INF and keeps
  // the truck on its current tour.
  Vertex residential = static_cast<Vertex>(roads.NumVertices() - 1);
  std::printf("\nDepot %u -> residential %u\n", depot, residential);
  for (Quality tonnes : {1.0f, 8.0f}) {
    Distance d = index.Query(depot, residential, tonnes);
    if (d == kInfDistance) {
      std::printf("  %2.0ft truck: no admissible route\n", tonnes);
    } else {
      std::printf("  %2.0ft truck: %u segments\n", tonnes, d);
    }
  }

  // Show one concrete route and cross-check it against online search.
  Quality heavy = 6.0f;
  auto route = QueryConstrainedPath(index, roads, depot, destination, heavy);
  if (!route.empty()) {
    std::printf("\n6t route (%zu hops):", route.size() - 1);
    size_t shown = 0;
    for (Vertex v : route) {
      if (shown++ > 12) {
        std::printf(" ...");
        break;
      }
      std::printf(" %u", v);
    }
    std::printf("\n  valid: %s\n",
                IsValidWPath(roads, route, heavy) ? "yes" : "NO");
    WcBfs oracle(&roads);
    std::printf("  matches online C-BFS distance: %s\n",
                oracle.Query(depot, destination, heavy) ==
                        static_cast<Distance>(route.size() - 1)
                    ? "yes"
                    : "NO");
  }
  return 0;
}
